// Durability overhead — what crash-atomicity costs.
//
// Measures SaveTable along three durability settings:
//   * in-place, no sync      (the historical pre-v2 save path)
//   * atomic rename, no sync (temp file + rename, barriers elided)
//   * atomic rename + sync   (the default: fdatasync + directory fsync)
// and the incremental path: LoadedTable::Commit() latency per batch of
// in-place mutations, which replaces a full rewrite for small updates.
//
// Emits BENCH_durability.json via WriteBenchJson.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/obs/metric_names.h"
#include "src/storage/block_device.h"
#include "src/workload/generator.h"

namespace avqdb::bench {
namespace {

constexpr size_t kBlockSize = 4096;
constexpr size_t kTuples = 60000;
constexpr int kSaveReps = 8;
constexpr int kCommitBatches = 40;

struct SaveCosts {
  double ms = 0.0;
  uint64_t fsyncs = 0;
};

SaveCosts MeasureSave(const Table& table, const std::string& path,
                      const SaveOptions& options) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* fsyncs = registry.GetCounter(obs::kDeviceFsyncs);
  SaveCosts costs;
  const uint64_t fsyncs_before = fsyncs->value();
  costs.ms = TimeMs(
      [&] {
        std::remove(path.c_str());
        Status s = SaveTable(table, path, options);
        AVQDB_CHECK(s.ok(), "save failed: %s", s.ToString().c_str());
      },
      kSaveReps);
  costs.fsyncs = (fsyncs->value() - fsyncs_before) /
                 static_cast<uint64_t>(kSaveReps);
  return costs;
}

}  // namespace

int Main() {
  PrintHeader("Durability overhead: atomic save and in-place commit");

  RelationSpec spec;
  spec.num_tuples = kTuples;
  spec.seed = 17;
  GeneratedRelation rel = MustGenerate(spec);
  MemBlockDevice device(kBlockSize);
  CodecOptions options;
  options.block_size = kBlockSize;
  auto table = Table::CreateAvq(rel.schema, &device, options).value();
  AVQDB_CHECK_OK(table->BulkLoad(SortedUnique(rel.tuples)));

  const std::string path = "/tmp/avqdb_bench_durability.avqt";

  SaveOptions in_place;
  in_place.atomic = false;
  in_place.sync = false;
  SaveOptions atomic_nosync;
  atomic_nosync.sync = false;
  const SaveOptions atomic_sync;  // the default

  const SaveCosts base = MeasureSave(*table, path, in_place);
  const SaveCosts atomic = MeasureSave(*table, path, atomic_nosync);
  const SaveCosts durable = MeasureSave(*table, path, atomic_sync);

  std::printf("SaveTable of %zu tuples (%zu-byte blocks, %d reps):\n",
              kTuples, kBlockSize, kSaveReps);
  std::printf("  %-24s %8.2f ms   %3llu fsyncs/save\n", "in-place, no sync",
              base.ms, static_cast<unsigned long long>(base.fsyncs));
  std::printf("  %-24s %8.2f ms   %3llu fsyncs/save  (%.2fx)\n",
              "atomic rename, no sync", atomic.ms,
              static_cast<unsigned long long>(atomic.fsyncs),
              atomic.ms / base.ms);
  std::printf("  %-24s %8.2f ms   %3llu fsyncs/save  (%.2fx)\n",
              "atomic rename + sync", durable.ms,
              static_cast<unsigned long long>(durable.fsyncs),
              durable.ms / base.ms);
  PrintRule();

  // Incremental commits: small mutation batches against the loaded image.
  {
    std::remove(path.c_str());
    AVQDB_CHECK_OK(SaveTable(*table, path));
  }
  auto loaded = LoadTable(path).value();
  Random rng(23);
  std::vector<double> commit_ms;
  commit_ms.reserve(kCommitBatches);
  for (int batch = 0; batch < kCommitBatches; ++batch) {
    for (int i = 0; i < 4; ++i) {
      OrdinalTuple t(loaded.table->schema()->num_attributes());
      for (size_t a = 0; a < t.size(); ++a) {
        t[a] = rng.Uniform(loaded.table->schema()->radices()[a]);
      }
      if (loaded.table->Contains(t).value()) {
        AVQDB_CHECK_OK(loaded.table->Delete(t));
      } else {
        AVQDB_CHECK_OK(loaded.table->Insert(t));
      }
    }
    commit_ms.push_back(TimeMs([&] { AVQDB_CHECK_OK(loaded.Commit()); }));
  }
  std::sort(commit_ms.begin(), commit_ms.end());
  const double commit_p50 = commit_ms[commit_ms.size() / 2];
  const double commit_p95 = commit_ms[commit_ms.size() * 95 / 100];
  std::printf(
      "LoadedTable::Commit (4-mutation batches, %d commits): "
      "p50 %.2f ms, p95 %.2f ms\n",
      kCommitBatches, commit_p50, commit_p95);
  std::printf("  vs full durable rewrite: %.1fx cheaper at the median\n",
              durable.ms / commit_p50);
  std::remove(path.c_str());

  const std::string bench = StringFormat(
      "{\"name\": \"durability\", \"tuples\": %zu, \"block_size\": %zu, "
      "\"save_reps\": %d, \"commit_batches\": %d}",
      kTuples, kBlockSize, kSaveReps, kCommitBatches);
  const std::string results = StringFormat(
      "{\"save_in_place_ms\": %.3f, \"save_atomic_ms\": %.3f, "
      "\"save_durable_ms\": %.3f, \"fsyncs_per_durable_save\": %llu, "
      "\"commit_p50_ms\": %.3f, \"commit_p95_ms\": %.3f}",
      base.ms, atomic.ms, durable.ms,
      static_cast<unsigned long long>(durable.fsyncs), commit_p50,
      commit_p95);
  if (!WriteBenchJson("BENCH_durability.json", bench, results)) return 1;
  return 0;
}

}  // namespace avqdb::bench

int main() { return avqdb::bench::Main(); }
