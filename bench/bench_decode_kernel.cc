// Per-kernel block decode throughput: tuples/s and coded bytes/s for
// every compiled-in decode kernel (scalar baseline, then the SIMD
// kernels the host can run), swept over block sizes {4096, 8192, 32768}
// and schema widths from the paper's 5-byte shape to a 64-byte
// eight-attribute tuple of 8-byte digits. Also reports the arena's
// allocation behavior: after the warm-up decode, the hot loop must not
// allocate (allocs_per_block == 0).
//
// Writes BENCH_decode_kernel.json in the bench_util.h envelope; the
// speedup_vs_scalar column is the acceptance number for the kernel layer
// (>= 2x on at least one SIMD kernel).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/avq/block_decoder.h"
#include "src/avq/decode_kernel.h"
#include "src/avq/relation_codec.h"
#include "src/common/random.h"
#include "src/common/slice.h"
#include "src/common/string_util.h"
#include "src/ordinal/phi.h"
#include "src/schema/domain.h"
#include "src/schema/schema.h"

namespace avqdb::bench {
namespace {

SchemaPtr MakeIntSchema(const std::vector<uint64_t>& cardinalities) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    attrs.push_back(Attribute{
        "a" + std::to_string(i),
        std::make_shared<IntegerRangeDomain>(
            0, static_cast<int64_t>(cardinalities[i]) - 1)});
  }
  return Schema::Create(std::move(attrs)).value();
}

struct SchemaCase {
  const char* name;
  SchemaPtr schema;
};

std::vector<SchemaCase> SchemaCases() {
  std::vector<SchemaCase> cases;
  // The paper's Fig 2.2 shape: five attributes, one byte each (m = 5).
  cases.push_back({"paper_m5", MakeIntSchema({8, 16, 64, 64, 64})});
  // Mid-width: eight two-byte attributes (m = 16).
  cases.push_back(
      {"mid_m16", MakeIntSchema(std::vector<uint64_t>(8, 65536))});
  // Wide: eight eight-byte attributes (m = 64) — the widen-bound case.
  cases.push_back(
      {"wide_m64", MakeIntSchema(std::vector<uint64_t>(8, 1ull << 62))});
  return cases;
}

// Uniform content: tuples drawn uniformly over the whole space, then
// φ-sorted. Deltas stay wide, so RLE and zero-skip barely help — the
// decode-kernel worst case.
std::vector<OrdinalTuple> UniformTuples(const Schema& schema, size_t count,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<OrdinalTuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    OrdinalTuple t(schema.num_attributes());
    for (size_t d = 0; d < t.size(); ++d) {
      t[d] = rng.Uniform(schema.radices()[d]);
    }
    tuples.push_back(std::move(t));
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return tuples;
}

// Clustered content: consecutive φ ranks with small random strides — the
// auto-increment-key shape AVQ is designed around (§3.2): neighboring
// deltas have long leading-zero runs for RLE to elide and zero-skip
// replay to exploit.
std::vector<OrdinalTuple> ClusteredTuples(const Schema& schema, size_t count,
                                          uint64_t seed) {
  Random rng(seed);
  const auto& radices = schema.radices();
  // Keep the walk inside the space with room to spare; cap the stride so
  // deltas stay narrow even in huge spaces (spaces beyond 128 bits are
  // unrankable but certainly roomy enough for the cap).
  uint64_t stride_cap = 4096;
  if (auto space = SpaceSize(radices); space.ok()) {
    u128 cap = space.value() / (count * 4);
    if (cap < 1) cap = 1;
    if (cap < stride_cap) stride_cap = static_cast<uint64_t>(cap);
  }
  std::vector<OrdinalTuple> tuples;
  tuples.reserve(count);
  OrdinalTuple t(radices.size(), 0);
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(t);
    // Mixed-radix add of the stride at the least-significant digit; the
    // stride cap keeps the walk inside |R|, so the carry always dies.
    uint64_t add = 1 + rng.Uniform(stride_cap);
    for (size_t idx = radices.size(); add != 0 && idx-- > 0;) {
      const uint64_t cur = t[idx] + add % radices[idx];
      const uint64_t carry = add / radices[idx] + (cur >= radices[idx]);
      t[idx] = cur >= radices[idx] ? cur - radices[idx] : cur;
      add = carry;
    }
  }
  return tuples;
}

struct Row {
  std::string schema;
  std::string content;
  size_t m = 0;
  size_t block_size = 0;
  std::string kernel;
  size_t blocks = 0;
  size_t tuples = 0;
  double decode_ms = 0;
  double tuples_per_sec = 0;
  double bytes_per_sec = 0;
  double speedup_vs_scalar = 0;
  uint64_t hot_grow_events = 0;  // arena allocations during the timed loop
};

constexpr size_t kTuplesPerRelation = 60000;

void RunConfig(const SchemaCase& sc, const char* content, size_t block_size,
               std::vector<Row>* rows) {
  CodecOptions options;
  options.block_size = block_size;
  RelationCodec codec(sc.schema, options);
  const std::vector<OrdinalTuple> tuples =
      std::string_view(content) == "clustered"
          ? ClusteredTuples(*sc.schema, kTuplesPerRelation, 42)
          : UniformTuples(*sc.schema, kTuplesPerRelation, 42);
  auto encoded = codec.EncodeSorted(tuples);
  AVQDB_CHECK(encoded.ok(), "encode failed: %s",
              encoded.status().ToString().c_str());
  const std::vector<std::string>& blocks = encoded->blocks;
  uint64_t coded_bytes = 0;
  for (const auto& b : blocks) coded_bytes += b.size();

  double scalar_ms = 0;
  for (const DecodeKernel* kernel : AllDecodeKernels()) {
    if (!kernel->Available()) continue;
    DecodeArena arena;
    BlockHeader header;
    // Warm-up: size the arena and fault the pages once.
    for (const auto& b : blocks) {
      AVQDB_CHECK_OK(
          DecodeBlockToArena(*sc.schema, Slice(b), *kernel, &arena, &header));
    }
    const uint64_t grows_before = arena.stats().grow_events;
    const int reps = block_size >= 32768 ? 8 : 5;
    const double ms = TimeMs(
        [&] {
          for (const auto& b : blocks) {
            AVQDB_CHECK_OK(DecodeBlockToArena(*sc.schema, Slice(b), *kernel,
                                              &arena, &header));
          }
        },
        reps);
    Row row;
    row.schema = sc.name;
    row.content = content;
    row.m = sc.schema->tuple_width();
    row.block_size = block_size;
    row.kernel = kernel->name();
    row.blocks = blocks.size();
    row.tuples = tuples.size();
    row.decode_ms = ms;
    row.tuples_per_sec = static_cast<double>(tuples.size()) / (ms / 1000.0);
    row.bytes_per_sec = static_cast<double>(coded_bytes) / (ms / 1000.0);
    row.hot_grow_events = arena.stats().grow_events - grows_before;
    if (row.kernel == "scalar") scalar_ms = ms;
    row.speedup_vs_scalar = scalar_ms > 0 ? scalar_ms / ms : 1.0;
    rows->push_back(row);
  }
}

void PrintTable(const std::vector<Row>& rows) {
  PrintHeader(
      "Decode kernels -- single-thread block decode throughput per kernel\n"
      "(same blocks, same digits out; scalar is the dispatch baseline)");
  std::printf("%-10s %-10s %4s %7s %-8s %7s %14s %12s %9s %6s\n", "schema",
              "content", "m", "block", "kernel", "blocks", "tuples/s",
              "MB/s", "speedup", "allocs");
  PrintRule();
  for (const Row& r : rows) {
    std::printf(
        "%-10s %-10s %4zu %7zu %-8s %7zu %14.0f %12.1f %8.2fx %6llu\n",
        r.schema.c_str(), r.content.c_str(), r.m, r.block_size,
        r.kernel.c_str(), r.blocks, r.tuples_per_sec, r.bytes_per_sec / 1e6,
        r.speedup_vs_scalar,
        static_cast<unsigned long long>(r.hot_grow_events));
  }
}

void WriteJson(const std::vector<Row>& rows) {
  std::string kernels;
  for (const DecodeKernel* kernel : AllDecodeKernels()) {
    if (!kernel->Available()) continue;
    if (!kernels.empty()) kernels += ", ";
    kernels += StringFormat("\"%s\"", kernel->name());
  }
  const std::string bench = StringFormat(
      "{\"name\": \"decode_kernel\", "
      "\"kernels\": [%s], "
      "\"selected_kernel\": \"%s\", "
      "\"tuples_per_relation\": %zu, "
      "\"note\": \"single-thread DecodeBlockToArena over whole coded "
      "relations; allocs counts arena growth during the timed loop (0 = "
      "zero-allocation hot path)\"}",
      kernels.c_str(), SelectedDecodeKernel().name(), kTuplesPerRelation);
  std::string results = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    results += StringFormat(
        "    {\"schema\": \"%s\", \"content\": \"%s\", \"tuple_width\": %zu, "
        "\"block_size\": %zu, \"kernel\": \"%s\", \"blocks\": %zu, "
        "\"tuples\": %zu, \"decode_ms\": %.3f, \"tuples_per_sec\": %.0f, "
        "\"bytes_per_sec\": %.0f, \"speedup_vs_scalar\": %.3f, "
        "\"allocs_per_block\": %.6f}%s\n",
        r.schema.c_str(), r.content.c_str(), r.m, r.block_size,
        r.kernel.c_str(), r.blocks,
        r.tuples, r.decode_ms, r.tuples_per_sec, r.bytes_per_sec,
        r.speedup_vs_scalar,
        static_cast<double>(r.hot_grow_events) /
            static_cast<double>(r.blocks),
        i + 1 < rows.size() ? "," : "");
  }
  results += "  ]";
  WriteBenchJson("BENCH_decode_kernel.json", bench, results);
}

void Run() {
  std::vector<Row> rows;
  for (const SchemaCase& sc : SchemaCases()) {
    for (const char* content : {"clustered", "uniform"}) {
      for (size_t block_size :
           {size_t{4096}, size_t{8192}, size_t{32768}}) {
        RunConfig(sc, content, block_size, &rows);
      }
    }
  }
  PrintTable(rows);
  WriteJson(rows);
}

}  // namespace
}  // namespace avqdb::bench

int main() {
  avqdb::bench::Run();
  return 0;
}
