#include "src/db/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

std::vector<OrdinalTuple> UniqueSorted(std::vector<OrdinalTuple> tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

struct TableCase {
  const char* name;
  bool avq;
  size_t block_size;
};

class TableParam : public ::testing::TestWithParam<TableCase> {
 protected:
  std::unique_ptr<Table> MakeTable(SchemaPtr schema) {
    device_ = std::make_unique<MemBlockDevice>(GetParam().block_size);
    if (GetParam().avq) {
      CodecOptions options;
      options.block_size = GetParam().block_size;
      return Table::CreateAvq(schema, device_.get(), options).value();
    }
    return Table::CreateHeap(schema, device_.get()).value();
  }
  std::unique_ptr<MemBlockDevice> device_;
};

TEST_P(TableParam, BulkLoadAndScan) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  auto tuples =
      UniqueSorted(testing::RandomTuples(*schema, 3000, 42));
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  EXPECT_EQ(table->num_tuples(), tuples.size());
  EXPECT_GT(table->DataBlockCount(), 1u);
  auto scanned = table->ScanAll();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value(), tuples);
}

TEST_P(TableParam, BulkLoadRejectsDuplicatesAndNonEmpty) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  EXPECT_TRUE(table->BulkLoad({{1, 1, 1, 1, 1}, {1, 1, 1, 1, 1}})
                  .IsInvalidArgument());
  ASSERT_TRUE(table->BulkLoad({{1, 1, 1, 1, 1}}).ok());
  EXPECT_TRUE(table->BulkLoad({{2, 2, 2, 2, 2}}).IsInvalidArgument());
}

TEST_P(TableParam, ContainsAndPointOps) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  ASSERT_TRUE(table->BulkLoad({{1, 2, 3, 4, 5}, {3, 4, 5, 6, 7}}).ok());
  EXPECT_TRUE(table->Contains({1, 2, 3, 4, 5}).value());
  EXPECT_FALSE(table->Contains({1, 2, 3, 4, 6}).value());
  EXPECT_FALSE(table->Contains({0, 0, 0, 0, 0}).value());
  EXPECT_FALSE(table->Contains({7, 15, 63, 63, 63}).value());
}

TEST_P(TableParam, InsertIntoEmptyTable) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  ASSERT_TRUE(table->Insert({2, 2, 2, 2, 2}).ok());
  EXPECT_EQ(table->num_tuples(), 1u);
  EXPECT_EQ(table->DataBlockCount(), 1u);
  EXPECT_TRUE(table->Contains({2, 2, 2, 2, 2}).value());
  EXPECT_TRUE(table->Insert({2, 2, 2, 2, 2}).IsAlreadyExists());
}

TEST_P(TableParam, InsertsWithSplitsPreserveContents) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 2500, 7));
  for (const auto& t : tuples) {
    ASSERT_TRUE(table->Insert(t).ok()) << TupleToString(t);
  }
  EXPECT_EQ(table->num_tuples(), tuples.size());
  EXPECT_GT(table->DataBlockCount(), 2u);
  auto scanned = table->ScanAll();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value(), tuples);
}

TEST_P(TableParam, DeleteShrinksAndFreesBlocks) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 1500, 8));
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  // Delete every other tuple, then the rest.
  for (size_t i = 0; i < tuples.size(); i += 2) {
    ASSERT_TRUE(table->Delete(tuples[i]).ok());
  }
  EXPECT_EQ(table->num_tuples(), tuples.size() - (tuples.size() + 1) / 2);
  for (size_t i = 1; i < tuples.size(); i += 2) {
    ASSERT_TRUE(table->Delete(tuples[i]).ok());
  }
  EXPECT_EQ(table->num_tuples(), 0u);
  EXPECT_EQ(table->DataBlockCount(), 0u);
  EXPECT_TRUE(table->Delete(tuples[0]).IsNotFound());
  auto scanned = table->ScanAll();
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(scanned.value().empty());
}

TEST_P(TableParam, RandomizedMirrorOps) {
  auto schema = testing::IntSchema({6, 6, 6, 6});
  auto table = MakeTable(schema);
  Random rng(99);
  std::set<OrdinalTuple> mirror;
  for (int op = 0; op < 3000; ++op) {
    OrdinalTuple t = {rng.Uniform(6), rng.Uniform(6), rng.Uniform(6),
                      rng.Uniform(6)};
    if (rng.Bernoulli(0.65)) {
      Status s = table->Insert(t);
      if (mirror.contains(t)) {
        EXPECT_TRUE(s.IsAlreadyExists()) << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        mirror.insert(t);
      }
    } else {
      Status s = table->Delete(t);
      if (mirror.contains(t)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        mirror.erase(t);
      } else {
        EXPECT_TRUE(s.IsNotFound()) << s.ToString();
      }
    }
  }
  EXPECT_EQ(table->num_tuples(), mirror.size());
  auto scanned = table->ScanAll();
  ASSERT_TRUE(scanned.ok());
  std::vector<OrdinalTuple> expected(mirror.begin(), mirror.end());
  std::sort(expected.begin(), expected.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(scanned.value(), expected);
}

TEST_P(TableParam, BulkLoadFillFactor) {
  auto schema = testing::PaperShapeSchema();
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 2000, 21));
  auto full = MakeTable(schema);
  ASSERT_TRUE(full->BulkLoad(tuples, 1.0).ok());
  auto roomy = MakeTable(schema);
  ASSERT_TRUE(roomy->BulkLoad(tuples, 0.5).ok());
  // Half-full packing needs roughly twice the blocks...
  EXPECT_GT(roomy->DataBlockCount(), full->DataBlockCount() * 3 / 2);
  // ...but the contents are identical.
  EXPECT_EQ(roomy->ScanAll().value(), tuples);
  // And invalid factors are rejected.
  auto fresh = MakeTable(schema);
  EXPECT_TRUE(fresh->BulkLoad(tuples, 0.0).IsInvalidArgument());
  EXPECT_TRUE(fresh->BulkLoad(tuples, 1.5).IsInvalidArgument());
}

TEST_P(TableParam, InsertBuiltTableStaysCompact) {
  // Regression test for split fragmentation: a table built by random
  // single-tuple inserts must not use more than ~2.5x the blocks of a
  // bulk-loaded one (balanced splits keep blocks at least half full).
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 4000, 12));
  for (const auto& t : tuples) {
    ASSERT_TRUE(table->Insert(t).ok());
  }
  auto device2 = std::make_unique<MemBlockDevice>(GetParam().block_size);
  std::unique_ptr<Table> packed;
  if (GetParam().avq) {
    CodecOptions options;
    options.block_size = GetParam().block_size;
    packed = Table::CreateAvq(schema, device2.get(), options).value();
  } else {
    packed = Table::CreateHeap(schema, device2.get()).value();
  }
  ASSERT_TRUE(packed->BulkLoad(tuples).ok());
  EXPECT_LE(table->DataBlockCount(),
            packed->DataBlockCount() * 5 / 2 + 1)
      << "insert-built: " << table->DataBlockCount()
      << ", bulk-loaded: " << packed->DataBlockCount();
}

TEST_P(TableParam, UpdateMovesTuples) {
  auto schema = testing::PaperShapeSchema();
  auto table = MakeTable(schema);
  ASSERT_TRUE(table->BulkLoad({{1, 1, 1, 1, 1}, {2, 2, 2, 2, 2}}).ok());

  // Move a tuple to a far-away φ position.
  ASSERT_TRUE(table->Update({1, 1, 1, 1, 1}, {7, 15, 63, 63, 63}).ok());
  EXPECT_FALSE(table->Contains({1, 1, 1, 1, 1}).value());
  EXPECT_TRUE(table->Contains({7, 15, 63, 63, 63}).value());
  EXPECT_EQ(table->num_tuples(), 2u);

  // Updating a missing tuple fails; nothing changes.
  EXPECT_TRUE(table->Update({3, 3, 3, 3, 3}, {4, 4, 4, 4, 4}).IsNotFound());
  // Updating onto an existing tuple fails and keeps the source.
  EXPECT_TRUE(
      table->Update({2, 2, 2, 2, 2}, {7, 15, 63, 63, 63}).IsAlreadyExists());
  EXPECT_TRUE(table->Contains({2, 2, 2, 2, 2}).value());
  // Identity update on a present tuple is a no-op success.
  EXPECT_TRUE(table->Update({2, 2, 2, 2, 2}, {2, 2, 2, 2, 2}).ok());
  EXPECT_EQ(table->num_tuples(), 2u);
}

TEST_P(TableParam, RowApiRoundTrip) {
  auto schema = PaperEmployeeSchema();
  auto table = MakeTable(schema);
  for (const Row& row : PaperEmployeeRows()) {
    ASSERT_TRUE(table->InsertRow(row).ok()) << RowToString(row);
  }
  EXPECT_EQ(table->num_tuples(), 50u);
  ASSERT_TRUE(table->DeleteRow(PaperEmployeeRows()[0]).ok());
  EXPECT_EQ(table->num_tuples(), 49u);
  EXPECT_TRUE(table->DeleteRow(PaperEmployeeRows()[0]).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    Stores, TableParam,
    ::testing::Values(TableCase{"avq_256", true, 256},
                      TableCase{"avq_1024", true, 1024},
                      TableCase{"heap_256", false, 256},
                      TableCase{"heap_1024", false, 1024}),
    [](const ::testing::TestParamInfo<TableCase>& info) {
      return info.param.name;
    });

TEST(TableSecondary, MaintainedAcrossInsertsAndDeletes) {
  auto schema = testing::IntSchema({6, 6, 6, 6});
  MemBlockDevice device(256);
  CodecOptions options;
  options.block_size = 256;
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(table->CreateSecondaryIndex(2).ok());
  EXPECT_TRUE(table->HasSecondaryIndex(2));
  EXPECT_FALSE(table->HasSecondaryIndex(1));
  EXPECT_TRUE(table->CreateSecondaryIndex(2).IsAlreadyExists());
  EXPECT_TRUE(table->CreateSecondaryIndex(9).IsInvalidArgument());

  Random rng(5);
  std::set<OrdinalTuple> mirror;
  for (int op = 0; op < 2500; ++op) {
    OrdinalTuple t = {rng.Uniform(6), rng.Uniform(6), rng.Uniform(6),
                      rng.Uniform(6)};
    if (rng.Bernoulli(0.7)) {
      if (!mirror.contains(t)) {
        ASSERT_TRUE(table->Insert(t).ok());
        mirror.insert(t);
      }
    } else if (mirror.contains(t)) {
      ASSERT_TRUE(table->Delete(t).ok());
      mirror.erase(t);
    }
  }

  // Every posting must be accurate: for each value v of attribute 2, the
  // union of postings' blocks must contain exactly the mirror tuples.
  const SecondaryIndex* index = table->GetSecondaryIndex(2);
  ASSERT_NE(index, nullptr);
  for (uint64_t v = 0; v < 6; ++v) {
    auto blocks = index->Lookup(v).value();
    std::set<OrdinalTuple> found;
    for (BlockId b : blocks) {
      auto content = table->ReadDataBlock(b);
      ASSERT_TRUE(content.ok());
      for (const auto& t : content.value()) {
        if (t[2] == v) found.insert(t);
      }
    }
    std::set<OrdinalTuple> expected;
    for (const auto& t : mirror) {
      if (t[2] == v) expected.insert(t);
    }
    EXPECT_EQ(found, expected) << "value " << v;
  }
}

TEST(TableSecondary, BuildFromExistingContents) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 800, 3));
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  ASSERT_TRUE(table->CreateSecondaryIndex(4).ok());
  const SecondaryIndex* index = table->GetSecondaryIndex(4);
  // Spot check: postings for each value cover all matching tuples.
  for (uint64_t v = 0; v < 64; v += 13) {
    auto blocks = index->Lookup(v).value();
    size_t found = 0;
    for (BlockId b : blocks) {
      auto content = table->ReadDataBlock(b);
      ASSERT_TRUE(content.ok());
      for (const auto& t : content.value()) {
        if (t[4] == v) ++found;
      }
    }
    size_t expected = 0;
    for (const auto& t : tuples) {
      if (t[4] == v) ++expected;
    }
    EXPECT_EQ(found, expected) << "value " << v;
  }
}

TEST(Table, CreateRejectsBlockSizeMismatch) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 1024;  // != device block size
  auto codec = MakeAvqBlockCodec(schema, options);
  EXPECT_TRUE(Table::Create(schema, &device, std::move(codec))
                  .status()
                  .IsInvalidArgument());
}

TEST(Table, HeapAndAvqStoreSameLogicalContent) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device_a(512), device_b(512);
  CodecOptions options;
  options.block_size = 512;
  auto avq = Table::CreateAvq(schema, &device_a, options).value();
  auto heap = Table::CreateHeap(schema, &device_b).value();
  auto tuples = UniqueSorted(testing::RandomTuples(*schema, 1200, 17));
  ASSERT_TRUE(avq->BulkLoad(tuples).ok());
  ASSERT_TRUE(heap->BulkLoad(tuples).ok());
  EXPECT_EQ(avq->ScanAll().value(), heap->ScanAll().value());
  // Compression: the AVQ store uses fewer data blocks.
  EXPECT_LT(avq->DataBlockCount(), heap->DataBlockCount());
}

}  // namespace
}  // namespace avqdb
