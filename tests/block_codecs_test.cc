// Direct tests of the pluggable block codecs (db/block_codecs.h),
// including decoder fuzzing: arbitrary bytes must never crash and must
// fail with structured Corruption errors.

#include "src/db/block_codecs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

std::vector<OrdinalTuple> Sorted(std::vector<OrdinalTuple> tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return tuples;
}

TEST(RawBlockCodec, RoundTripAndCapacity) {
  auto schema = testing::PaperShapeSchema();
  auto codec = MakeRawBlockCodec(schema, 128);
  EXPECT_STREQ(codec->name(), "raw");
  EXPECT_FALSE(codec->is_avq());
  EXPECT_EQ(codec->block_size(), 128u);
  // (128 - 16) / 5 = 22 tuples per block.
  auto tuples = Sorted(testing::RandomTuples(*schema, 22, 5));
  EXPECT_TRUE(codec->Fits(tuples));
  auto block = codec->EncodeBlock(tuples);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->size(), 128u);
  EXPECT_EQ(codec->DecodeBlock(Slice(block.value())).value(), tuples);

  tuples.push_back(tuples.back());
  EXPECT_FALSE(codec->Fits(tuples));
  EXPECT_TRUE(codec->EncodeBlock(tuples).status().IsInvalidArgument());
}

TEST(RawBlockCodec, FillCountIsCapacityBounded) {
  auto schema = testing::PaperShapeSchema();
  auto codec = MakeRawBlockCodec(schema, 128);
  auto tuples = Sorted(testing::RandomTuples(*schema, 100, 6));
  EXPECT_EQ(codec->FillCount(tuples, 0), 22u);
  EXPECT_EQ(codec->FillCount(tuples, 90), 10u);
  EXPECT_EQ(codec->FillCount(tuples, 100), 0u);
}

TEST(RawBlockCodec, EmptyBlockRejected) {
  auto schema = testing::PaperShapeSchema();
  auto codec = MakeRawBlockCodec(schema, 128);
  EXPECT_TRUE(codec->EncodeBlock({}).status().IsInvalidArgument());
  EXPECT_FALSE(codec->Fits({}));
}

TEST(CodecDefaults, ChecksumsAreOnByDefaultEverywhere) {
  // Durability audit: every block-write site inherits CodecOptions, so
  // the default must be checksummed. Legacy images written with
  // checksum=false must still decode (the flag is per block).
  auto schema = testing::PaperShapeSchema();
  CodecOptions defaults;
  EXPECT_TRUE(defaults.checksum);

  defaults.block_size = 256;
  auto avq = MakeAvqBlockCodec(schema, defaults);
  auto block = avq->EncodeBlock({{1, 2, 3, 4, 5}}).value();
  EXPECT_EQ(static_cast<uint8_t>(block[3]) & 0x1, 0x1)
      << "AVQ blocks must carry the checksum flag by default";
  auto raw = MakeRawBlockCodec(schema, 256);
  auto raw_block = raw->EncodeBlock({{1, 2, 3, 4, 5}}).value();
  EXPECT_EQ(static_cast<uint8_t>(raw_block[3]) & 0x1, 0x1)
      << "raw blocks must carry the checksum flag by default";

  // A block written without checksums is still readable by a
  // default-options codec.
  CodecOptions legacy = defaults;
  legacy.checksum = false;
  auto legacy_block =
      MakeAvqBlockCodec(schema, legacy)->EncodeBlock({{1, 2, 3, 4, 5}});
  ASSERT_TRUE(legacy_block.ok());
  auto decoded = avq->DecodeBlock(Slice(legacy_block.value()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(),
            (std::vector<OrdinalTuple>{{1, 2, 3, 4, 5}}));
}

TEST(AvqBlockCodec, FitsAgreesWithEncode) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 256;
  auto codec = MakeAvqBlockCodec(schema, options);
  EXPECT_TRUE(codec->is_avq());
  auto tuples = Sorted(testing::RandomTuples(*schema, 300, 7));
  // Grow a prefix until Fits flips; Encode must agree at every step.
  for (size_t count = 1; count <= tuples.size(); count += 13) {
    std::vector<OrdinalTuple> prefix(tuples.begin(),
                                     tuples.begin() +
                                         static_cast<ptrdiff_t>(count));
    const bool fits = codec->Fits(prefix);
    const bool encodes = codec->EncodeBlock(prefix).ok();
    EXPECT_EQ(fits, encodes) << "count " << count;
    if (!fits) break;
  }
}

TEST(AvqBlockCodec, FillCountMatchesFits) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 512;
  auto codec = MakeAvqBlockCodec(schema, options);
  auto tuples = Sorted(testing::RandomTuples(*schema, 400, 8));
  const size_t count = codec->FillCount(tuples, 0);
  ASSERT_GT(count, 0u);
  std::vector<OrdinalTuple> exact(tuples.begin(),
                                  tuples.begin() +
                                      static_cast<ptrdiff_t>(count));
  EXPECT_TRUE(codec->Fits(exact));
  if (count < tuples.size()) {
    exact.push_back(tuples[count]);
    EXPECT_FALSE(codec->Fits(exact));
  }
}

class CodecFuzz : public ::testing::TestWithParam<bool> {};

TEST_P(CodecFuzz, RandomBuffersNeverCrash) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 256;
  auto codec = GetParam() ? MakeAvqBlockCodec(schema, options)
                          : MakeRawBlockCodec(schema, 256);
  Random rng(0xf22);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string buffer(256, '\0');
    for (auto& c : buffer) c = static_cast<char>(rng.Next() & 0xff);
    auto decoded = codec->DecodeBlock(Slice(buffer));
    if (decoded.ok()) continue;  // astronomically unlikely, but legal
    EXPECT_TRUE(decoded.status().IsCorruption())
        << decoded.status().ToString();
  }
}

TEST_P(CodecFuzz, MutatedValidBlocksNeverYieldWrongSchema) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 256;
  auto codec = GetParam() ? MakeAvqBlockCodec(schema, options)
                          : MakeRawBlockCodec(schema, 256);
  auto tuples = Sorted(testing::RandomTuples(*schema, 20, 9));
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  auto block = codec->EncodeBlock(tuples).value();
  Random rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = block;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(mutated.size());
      mutated[pos] =
          static_cast<char>(mutated[pos] ^ (1u << rng.Uniform(8)));
    }
    auto decoded = codec->DecodeBlock(Slice(mutated));
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorruption());
      continue;
    }
    // If it decodes (e.g. the flip hit padding), every tuple must still
    // be schema-valid and sorted.
    for (size_t i = 0; i < decoded->size(); ++i) {
      EXPECT_TRUE(ValidateTuple(*schema, decoded.value()[i]).ok());
      if (i > 0) {
        EXPECT_LE(CompareTuples(decoded.value()[i - 1], decoded.value()[i]),
                  0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecFuzz, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "avq" : "raw";
                         });

}  // namespace
}  // namespace avqdb
