#include "src/ordinal/digit_bytes.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace avqdb {
namespace {

using mixed_radix::Digits;

TEST(DigitLayout, CreateValidation) {
  EXPECT_TRUE(DigitLayout::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(DigitLayout::Create({0}).status().IsInvalidArgument());
  EXPECT_TRUE(DigitLayout::Create({9}).status().IsInvalidArgument());
  EXPECT_TRUE(DigitLayout::Create(std::vector<uint8_t>(128, 2))
                  .status()
                  .IsInvalidArgument());  // 256 > 255
  EXPECT_TRUE(DigitLayout::Create({1, 2, 8}).ok());
}

TEST(DigitLayout, TotalWidth) {
  auto layout = DigitLayout::Create({1, 2, 3}).value();
  EXPECT_EQ(layout.num_digits(), 3u);
  EXPECT_EQ(layout.total_width(), 6u);
}

TEST(DigitLayout, ImageIsBigEndianPerDigit) {
  auto layout = DigitLayout::Create({2, 1}).value();
  std::string image;
  ASSERT_TRUE(layout.AppendImage({0x0102, 0x03}, &image).ok());
  ASSERT_EQ(image.size(), 3u);
  EXPECT_EQ(static_cast<uint8_t>(image[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(image[1]), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(image[2]), 0x03);
}

TEST(DigitLayout, ImageRoundTrip) {
  auto layout = DigitLayout::Create({1, 2, 3, 8}).value();
  Random rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Digits digits = {rng.Uniform(1ull << 8), rng.Uniform(1ull << 16),
                     rng.Uniform(1ull << 24), rng.Next()};
    std::string image;
    ASSERT_TRUE(layout.AppendImage(digits, &image).ok());
    ASSERT_EQ(image.size(), layout.total_width());
    Digits parsed;
    ASSERT_TRUE(layout.ParseImage(Slice(image), &parsed).ok());
    EXPECT_EQ(parsed, digits);
  }
}

TEST(DigitLayout, AppendRejectsOverflowingDigit) {
  auto layout = DigitLayout::Create({1}).value();
  std::string image;
  EXPECT_TRUE(layout.AppendImage({256}, &image).IsInternal());
}

TEST(DigitLayout, ParseRejectsShortInput) {
  auto layout = DigitLayout::Create({2, 2}).value();
  Digits parsed;
  std::string three(3, '\0');
  EXPECT_TRUE(layout.ParseImage(Slice(three), &parsed).IsCorruption());
}

TEST(DigitLayout, LeadingZeroCounting) {
  auto layout = DigitLayout::Create({1, 2, 1}).value();  // 4 bytes total
  EXPECT_EQ(layout.CountLeadingZeroBytes({0, 0, 0}), 4u);
  EXPECT_EQ(layout.CountLeadingZeroBytes({0, 0, 5}), 3u);
  EXPECT_EQ(layout.CountLeadingZeroBytes({0, 5, 0}), 2u);
  EXPECT_EQ(layout.CountLeadingZeroBytes({0, 0x0500, 0}), 1u);
  EXPECT_EQ(layout.CountLeadingZeroBytes({1, 0, 0}), 0u);
}

TEST(DigitLayout, CountMatchesImage) {
  auto layout = DigitLayout::Create({1, 3, 2}).value();
  Random rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    // Bias toward small values so leading zeros actually occur.
    Digits digits = {rng.Uniform(4), rng.Uniform(1 << 10), rng.Uniform(50)};
    std::string image;
    ASSERT_TRUE(layout.AppendImage(digits, &image).ok());
    size_t expected = 0;
    while (expected < image.size() && image[expected] == '\0') ++expected;
    EXPECT_EQ(layout.CountLeadingZeroBytes(digits), expected);
  }
}

TEST(DigitLayout, SuffixImageRoundTrip) {
  auto layout = DigitLayout::Create({1, 2, 2}).value();  // 5 bytes
  const Digits digits = {0, 0, 777};
  std::string image;
  ASSERT_TRUE(layout.AppendImage(digits, &image).ok());
  const size_t lz = layout.CountLeadingZeroBytes(digits);
  ASSERT_EQ(lz, 3u);
  Digits parsed;
  ASSERT_TRUE(layout
                  .ParseSuffixImage(lz,
                                    Slice(image.data() + lz,
                                          image.size() - lz),
                                    &parsed)
                  .ok());
  EXPECT_EQ(parsed, digits);
}

TEST(DigitLayout, SuffixImageFullZeros) {
  auto layout = DigitLayout::Create({1, 1}).value();
  Digits parsed;
  ASSERT_TRUE(layout.ParseSuffixImage(2, Slice(), &parsed).ok());
  EXPECT_EQ(parsed, (Digits{0, 0}));
}

TEST(DigitLayout, SuffixImageRejectsBadCounts) {
  auto layout = DigitLayout::Create({1, 1}).value();
  Digits parsed;
  EXPECT_TRUE(layout.ParseSuffixImage(3, Slice(), &parsed).IsCorruption());
  std::string one(1, '\x05');
  EXPECT_TRUE(
      layout.ParseSuffixImage(0, Slice(one), &parsed).IsCorruption());
}

}  // namespace
}  // namespace avqdb
