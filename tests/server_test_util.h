// In-process test harness for the serving layer.
//
// ServerFixture boots a real Server on an ephemeral loopback port over a
// Database holding one synthetic paper-shaped table, and keeps the
// sorted ground-truth tuples so tests can compare wire results against
// direct Database::Select output byte for byte.
//
// RawConn is the adversarial counterpart to server::Client: a bare
// socket that sends exactly the bytes a test specifies — truncated
// headers, oversized lengths, garbage opcodes — and observes whether
// the server answers with a well-formed ERROR frame or closes, without
// any client-side framing logic papering over server behavior.

#ifndef AVQDB_TESTS_SERVER_TEST_UTIL_H_
#define AVQDB_TESTS_SERVER_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/db/database.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/schema/tuple.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/socket_util.h"
#include "src/workload/generator.h"

namespace avqdb::server::testing {

// Current value of a process-global counter (tests diff before/after).
inline uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

// Generates the fixture relation: 5 attributes, paper-shaped domains,
// sorted + deduplicated into bulk-load (φ) order.
inline std::vector<OrdinalTuple> MakeFixtureTuples(size_t num_tuples,
                                                   uint64_t seed,
                                                   SchemaPtr* schema) {
  RelationSpec spec;
  spec.num_attributes = 5;
  spec.explicit_domain_sizes = {8, 16, 64, 64, 64};
  spec.num_tuples = num_tuples;
  spec.seed = seed;
  auto rel = GenerateRelation(spec);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  std::vector<OrdinalTuple> tuples = rel->tuples;
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  *schema = rel->schema;
  return tuples;
}

struct FixtureOptions {
  size_t num_tuples = 20000;
  uint64_t seed = 42;
  ServerOptions server;
  // When > 0, admission control is enabled with this concurrency.
  size_t max_concurrency = 0;
  size_t max_queue_depth = 0;
};

// A live server over one synthetic table named "orders".
class ServerFixture {
 public:
  explicit ServerFixture(FixtureOptions options = FixtureOptions{})
      : options_(options) {
    SchemaPtr schema;
    tuples_ = MakeFixtureTuples(options.num_tuples, options.seed, &schema);
    auto table = db_.CreateTable("orders", schema, TableKind::kAvq);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    Status loaded = (*table)->BulkLoad(tuples_);
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    if (options.max_concurrency > 0) {
      db_.EnableAdmissionControl(
          {.max_concurrency = options.max_concurrency,
           .max_queue_depth = options.max_queue_depth});
    }
    server_ = std::make_unique<Server>(&db_, options.server);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~ServerFixture() {
    if (server_) server_->Shutdown();
  }

  Database& db() { return db_; }
  Server& server() { return *server_; }
  uint16_t port() const { return server_->port(); }
  const std::vector<OrdinalTuple>& tuples() const { return tuples_; }

  // Ground truth for a wire query: the same Select the server runs,
  // ungoverned.
  std::vector<OrdinalTuple> DirectSelect(const ConjunctiveQuery& query) {
    auto result = db_.Select("orders", query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : std::vector<OrdinalTuple>{};
  }

  // A handshaken protocol client.
  std::unique_ptr<Client> Connect(ClientOptions options = ClientOptions{}) {
    auto client = Client::Connect("127.0.0.1", port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

 private:
  FixtureOptions options_;
  Database db_;
  std::vector<OrdinalTuple> tuples_;
  std::unique_ptr<Server> server_;
};

// Raw-socket peer: sends byte-exact data, reads whole frames, and can
// assert the server closed the connection.
class RawConn {
 public:
  static RawConn Connect(uint16_t port) {
    auto fd = ConnectTo("127.0.0.1", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return RawConn(fd.ok() ? *fd : -1);
  }

  explicit RawConn(int fd) : fd_(fd) {}
  ~RawConn() { Close(); }

  RawConn(RawConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  RawConn& operator=(RawConn&& other) noexcept {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    return *this;
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  // Sends exactly these bytes (no framing added).
  void SendBytes(const std::string& bytes) {
    Status status = SendAll(fd_, bytes.data(), bytes.size());
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  // Sends a well-formed frame.
  void SendFrame(Opcode opcode, uint64_t request_id,
                 const std::string& payload) {
    SendBytes(EncodeFrame(opcode, request_id, Slice(payload)));
  }

  // Performs the HELLO/WELCOME handshake; fails the test on rejection.
  void Handshake(uint32_t version = kProtocolVersion) {
    SendFrame(Opcode::kHello, 0, EncodeHelloPayload(version));
    Result<Frame> welcome = ReadOneFrame();
    ASSERT_TRUE(welcome.ok()) << welcome.status().ToString();
    ASSERT_EQ(welcome->opcode, Opcode::kWelcome);
  }

  // Reads one whole frame (test-sized timeout).
  Result<Frame> ReadOneFrame(int timeout_ms = 10000) {
    return ReadFrame(fd_, kDefaultMaxFrameBytes, timeout_ms, nullptr);
  }

  // True when the server has closed its end: the next frame read
  // reports clean EOF (NotFound) before `timeout_ms` elapses.
  bool ServerClosed(int timeout_ms = 10000) {
    Result<Frame> frame = ReadOneFrame(timeout_ms);
    return !frame.ok() && frame.status().code() == StatusCode::kNotFound;
  }

  // Reads frames until ERROR arrives for `request_id`; returns the
  // reconstructed status. Fails the test on anything unexpected.
  Status ReadErrorFor(uint64_t request_id) {
    Result<Frame> frame = ReadOneFrame();
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok()) return frame.status();
    EXPECT_EQ(frame->opcode, Opcode::kError);
    EXPECT_EQ(frame->request_id, request_id);
    Status carried = Status::OK();
    Status parsed = ParseErrorPayload(Slice(frame->payload), &carried);
    EXPECT_TRUE(parsed.ok()) << parsed.ToString();
    return carried;
  }

  void Close() {
    if (fd_ >= 0) CloseFd(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

// A simple point + range conjunctive query over the fixture table.
inline ConjunctiveQuery RangeOn(size_t attribute, uint64_t lo, uint64_t hi) {
  ConjunctiveQuery query;
  query.predicates.push_back({attribute, lo, hi});
  return query;
}

}  // namespace avqdb::server::testing

#endif  // AVQDB_TESTS_SERVER_TEST_UTIL_H_
