// Session semantics over a live loopback server: pipelined responses
// arrive in order and byte-identical to direct Database::Select; a
// mid-query disconnect observably cancels execution; governance
// outcomes (admission shed, deadline, per-request memory cap) surface
// as typed ERROR frames the client reconstructs exactly.

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/db/admission_controller.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using testing::CounterValue;
using testing::RangeOn;
using testing::RawConn;
using testing::ServerFixture;

// Polls until `predicate` holds or `timeout` elapses.
template <typename Predicate>
bool EventuallyTrue(Predicate predicate,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(ServerSession, SingleQueryMatchesDirectSelectExactly) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(2, 10, 40);
  auto wire = client->Query(request);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  // Byte-identical: same tuples, same φ order.
  EXPECT_EQ(*wire, fixture.DirectSelect(request.query));
}

TEST(ServerSession, FullScanStreamsEveryTupleInMultipleChunks) {
  testing::FixtureOptions options;
  options.server.chunk_tuples = 100;
  ServerFixture fixture(options);
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  QueryRequest request;
  request.table = "orders";  // no predicates: scan everything
  ASSERT_TRUE(client->SendQuery(7, request).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->request_id, 7u);
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->tuples, fixture.tuples());
  // 100-tuple chunks over the whole table forces real streaming.
  EXPECT_GT(response->chunks, 1u);
}

TEST(ServerSession, PipelinedResponsesArriveInSendOrder) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  const std::vector<ConjunctiveQuery> queries = {
      RangeOn(0, 0, 3),  RangeOn(1, 2, 9),   RangeOn(2, 0, 63),
      RangeOn(3, 5, 30), RangeOn(4, 10, 20), ConjunctiveQuery{},
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest request;
    request.table = "orders";
    request.query = queries[i];
    ASSERT_TRUE(client->SendQuery(100 + i, request).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // Strict send order, each response byte-identical to the direct
    // execution of its query.
    EXPECT_EQ(response->request_id, 100 + i);
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    EXPECT_EQ(response->tuples, fixture.DirectSelect(queries[i]));
  }
}

TEST(ServerSession, UnknownTableIsATypedNotFoundError) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  QueryRequest request;
  request.table = "no_such_table";
  auto result = client->Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The session survives a query error: the next query still works.
  request.table = "orders";
  request.query = RangeOn(0, 0, 1);
  auto ok = client->Query(request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, fixture.DirectSelect(request.query));
}

TEST(ServerSession, QueuedDeadlineExpiresBehindPipelinedPredecessor) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  // Requests A1..A3: full scans that take real time. Request B: 1 ms
  // deadline, clocked from frame parse — it spends far longer than that
  // queued behind the scans on the session strand, so its expiry is
  // deterministic regardless of machine speed.
  QueryRequest scan;
  scan.table = "orders";
  ASSERT_TRUE(client->SendQuery(1, scan).ok());
  ASSERT_TRUE(client->SendQuery(11, scan).ok());
  ASSERT_TRUE(client->SendQuery(12, scan).ok());
  QueryRequest strict;
  strict.table = "orders";
  strict.deadline_ms = 1;
  ASSERT_TRUE(client->SendQuery(2, strict).ok());

  for (uint64_t expected : {1u, 11u, 12u}) {
    auto first = client->ReadResponse();
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first->request_id, expected);
    EXPECT_TRUE(first->status.ok());
  }

  auto second = client->ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->request_id, 2u);
  EXPECT_EQ(second->status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerSession, PerRequestMemoryCapIsEnforced) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  QueryRequest request;
  request.table = "orders";
  request.max_memory_bytes = 64;  // far below any full-scan result
  auto result = client->Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // Without the cap the same query succeeds on the same session.
  request.max_memory_bytes = 0;
  auto ok = client->Query(request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), fixture.tuples().size());
}

TEST(ServerSession, AbruptDisconnectCancelsOutstandingRequests) {
  ServerFixture fixture;
  const uint64_t cancels_before =
      CounterValue(obs::kServerDisconnectCancels);
  const uint64_t query_cancelled_before =
      CounterValue(obs::kQueryCancelled);

  // Pipeline several full scans, then drop the socket without GOODBYE.
  // The reader sees EOF while the strand still has work outstanding and
  // must cancel it (the executor observes via ExecContext::Check, which
  // records db.query.cancelled).
  RawConn conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();
  QueryRequest scan;
  scan.table = "orders";
  const std::string query_payload = EncodeQueryPayload(scan);
  for (uint64_t id = 1; id <= 4; ++id) {
    conn.SendFrame(Opcode::kQuery, id, query_payload);
  }
  conn.Close();

  EXPECT_TRUE(EventuallyTrue([&] {
    return CounterValue(obs::kServerDisconnectCancels) > cancels_before;
  })) << "disconnect did not cancel any outstanding request";
  // The cancellation is visible to the execution layer itself, not just
  // the serving layer's bookkeeping.
  EXPECT_TRUE(EventuallyTrue([&] {
    return CounterValue(obs::kQueryCancelled) > query_cancelled_before;
  })) << "no governed query observed the cancellation";
}

TEST(ServerSession, GoodbyeIsAGracefulCloseWithoutCancellation) {
  ServerFixture fixture;
  const uint64_t cancels_before =
      CounterValue(obs::kServerDisconnectCancels);

  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(0, 0, 3);
  ASSERT_TRUE(client->Query(request).ok());
  ASSERT_TRUE(client->SendGoodbye().ok());
  client.reset();  // EOF after GOODBYE

  EXPECT_TRUE(EventuallyTrue(
      [&] { return fixture.server().active_sessions() == 0; }));
  EXPECT_EQ(CounterValue(obs::kServerDisconnectCancels), cancels_before);
}

TEST(ServerSession, AdmissionShedSurfacesAsTypedErrorFrame) {
  testing::FixtureOptions options;
  options.num_tuples = 2000;
  options.max_concurrency = 1;
  options.max_queue_depth = 0;  // overflow sheds immediately
  ServerFixture fixture(options);
  const uint64_t shed_before = CounterValue(obs::kServerRequestsShed);

  // Hold the only admission slot from the test itself — the wire query
  // below then sheds deterministically, no timing involved.
  auto ticket = fixture.db().admission_controller()->Admit(nullptr);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();

  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(0, 0, 2);
  auto shed = client->Query(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue(obs::kServerRequestsShed), shed_before + 1);

  // Releasing the slot lets the same session's next query through.
  { AdmissionController::Ticket released = std::move(*ticket); }
  auto ok = client->Query(request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, fixture.DirectSelect(request.query));
}

TEST(ServerSession, ShutdownDrainsInFlightResponsesBeforeClosing) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  // Pipeline a few scans, then shut the server down while they are in
  // flight. Graceful drain means every pipelined response still arrives
  // complete and correct.
  QueryRequest scan;
  scan.table = "orders";
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(client->SendQuery(id, scan).ok());
  }
  std::thread shutdown([&] { fixture.server().Shutdown(); });
  for (uint64_t id = 1; id <= 3; ++id) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->request_id, id);
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    EXPECT_EQ(response->tuples.size(), fixture.tuples().size());
  }
  shutdown.join();
  // New connections are refused after drain began.
  ClientOptions refused_options;
  refused_options.io_timeout_ms = 2000;
  auto refused =
      Client::Connect("127.0.0.1", fixture.port(), refused_options);
  EXPECT_FALSE(refused.ok());
}

}  // namespace
}  // namespace avqdb::server
