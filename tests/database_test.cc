#include "src/db/database.h"

#include <gtest/gtest.h>

#include "src/db/query.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(Database, CreateGetDrop) {
  Database db(1024);
  EXPECT_EQ(db.block_size(), 1024u);
  auto table =
      db.CreateTable("emp", PaperEmployeeSchema(), TableKind::kAvq);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(db.GetTable("emp").value(), table.value());
  EXPECT_TRUE(db.GetTable("nope").status().IsNotFound());
  EXPECT_TRUE(db.CreateTable("emp", PaperEmployeeSchema(), TableKind::kHeap)
                  .status()
                  .IsAlreadyExists());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"emp"}));
  ASSERT_TRUE(db.DropTable("emp").ok());
  EXPECT_TRUE(db.DropTable("emp").IsNotFound());
  EXPECT_TRUE(db.TableNames().empty());
}

TEST(Database, AvqTableUsesDatabaseBlockSize) {
  Database db(2048);
  CodecOptions options;
  options.block_size = 512;  // overridden by the database
  auto table = db.CreateTable("t", testing::PaperShapeSchema(),
                              TableKind::kAvq, options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->codec().block_size(), 2048u);
}

TEST(Database, EndToEndBothKinds) {
  Database db(512);
  auto schema = PaperEmployeeSchema();
  auto avq = db.CreateTable("avq", schema, TableKind::kAvq).value();
  auto heap = db.CreateTable("heap", schema, TableKind::kHeap).value();
  for (const Row& row : PaperEmployeeRows()) {
    ASSERT_TRUE(avq->InsertRow(row).ok());
    ASSERT_TRUE(heap->InsertRow(row).ok());
  }
  QueryStats s1, s2;
  auto a = ExecuteRangeSelectRows(*avq, "department", Value("production"),
                                  Value("production"), &s1);
  auto b = ExecuteRangeSelectRows(*heap, "department", Value("production"),
                                  Value("production"), &s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().size(), b.value().size());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace avqdb
