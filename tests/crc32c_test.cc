#include "src/common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace avqdb::crc32c {
namespace {

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / standard CRC-32C test vectors.
  const std::string numbers = "123456789";
  EXPECT_EQ(Value(reinterpret_cast<const uint8_t*>(numbers.data()),
                  numbers.size()),
            0xe3069283u);

  std::string zeros(32, '\0');
  EXPECT_EQ(Value(reinterpret_cast<const uint8_t*>(zeros.data()),
                  zeros.size()),
            0x8a9136aau);

  std::string ones(32, '\xff');
  EXPECT_EQ(Value(reinterpret_cast<const uint8_t*>(ones.data()),
                  ones.size()),
            0x62a8ab43u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(Value(nullptr, 0), 0u); }

TEST(Crc32c, ExtendMatchesOneShot) {
  const std::string data = "hello, block device world";
  const uint32_t whole = Value(Slice(data));
  const auto* bytes = reinterpret_cast<const uint8_t*>(data.data());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Extend(0, bytes, split);
    partial = Extend(partial, bytes + split, data.size() - split);
    EXPECT_EQ(partial, whole) << "split at " << split;
  }
}

TEST(Crc32c, MaskIsInvertible) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // masking must change the value
  }
}

TEST(Crc32c, SensitiveToSingleBitFlips) {
  std::string data(64, 'x');
  const uint32_t base = Value(Slice(data));
  for (size_t i = 0; i < data.size(); i += 7) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(Value(Slice(flipped)), base) << "flip at " << i;
  }
}

}  // namespace
}  // namespace avqdb::crc32c
