// End-to-end integration: generated workloads loaded into both stores,
// queried on every attribute, and mutated — the two stores must stay
// logically identical while the AVQ store uses fewer data blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(Integration, GeneratedRelationFullLifecycle) {
  RelationSpec spec;
  spec.explicit_domain_sizes = {4, 4, 8, 8, 16, 16, 64};
  spec.num_attributes = 7;
  spec.num_tuples = 3000;
  spec.dedupe = true;
  spec.seed = 1234;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());

  MemBlockDevice avq_device(1024), heap_device(1024);
  CodecOptions options;
  options.block_size = 1024;
  auto avq = Table::CreateAvq(rel->schema, &avq_device, options).value();
  auto heap = Table::CreateHeap(rel->schema, &heap_device).value();
  ASSERT_TRUE(avq->BulkLoad(rel->tuples).ok());
  ASSERT_TRUE(heap->BulkLoad(rel->tuples).ok());
  ASSERT_TRUE(avq->CreateSecondaryIndex(5).ok());
  ASSERT_TRUE(heap->CreateSecondaryIndex(5).ok());

  // Compression holds at the storage level.
  EXPECT_LT(avq->DataBlockCount(), heap->DataBlockCount());

  // Every attribute, several ranges: identical answers, fewer or equal
  // data blocks for AVQ.
  for (size_t attr = 0; attr < 7; ++attr) {
    const uint64_t radix = rel->schema->radices()[attr];
    QueryStats sa, sh;
    RangeQuery query{attr, radix / 2, radix - 1};
    auto ra = ExecuteRangeSelect(*avq, query, &sa);
    auto rh = ExecuteRangeSelect(*heap, query, &sh);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rh.ok());
    EXPECT_EQ(ra.value(), rh.value()) << "attr " << attr;
    EXPECT_EQ(sa.path, sh.path);
    EXPECT_LE(sa.data_blocks_read, sh.data_blocks_read) << "attr " << attr;
  }

  // Interleaved mutations keep the stores in lockstep.
  Random rng(777);
  std::set<OrdinalTuple> mirror(rel->tuples.begin(), rel->tuples.end());
  for (int op = 0; op < 1500; ++op) {
    OrdinalTuple t(7);
    for (size_t i = 0; i < 7; ++i) {
      t[i] = rng.Uniform(rel->schema->radices()[i]);
    }
    if (rng.Bernoulli(0.5)) {
      Status a = avq->Insert(t);
      Status h = heap->Insert(t);
      EXPECT_EQ(a.code(), h.code());
      if (a.ok()) mirror.insert(t);
    } else {
      Status a = avq->Delete(t);
      Status h = heap->Delete(t);
      EXPECT_EQ(a.code(), h.code());
      if (a.ok()) mirror.erase(t);
    }
  }
  EXPECT_EQ(avq->num_tuples(), mirror.size());
  EXPECT_EQ(heap->num_tuples(), mirror.size());
  auto sa = avq->ScanAll();
  auto sh = heap->ScanAll();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sh.ok());
  EXPECT_EQ(sa.value(), sh.value());
  std::vector<OrdinalTuple> expected(mirror.begin(), mirror.end());
  std::sort(expected.begin(), expected.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(sa.value(), expected);

  // Secondary index still answers correctly after all the churn.
  QueryStats stats;
  auto filtered = ExecuteRangeSelect(*avq, RangeQuery{5, 3, 9}, &stats);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(stats.path, AccessPath::kSecondaryIndex);
  size_t expected_count = 0;
  for (const auto& t : expected) {
    if (t[5] >= 3 && t[5] <= 9) ++expected_count;
  }
  EXPECT_EQ(filtered->size(), expected_count);
}

TEST(Integration, ClusteredWorkloadCompressesHard) {
  auto rel = GenerateRelation(ClusteredRelationSpec(20000, 50, 5));
  ASSERT_TRUE(rel.ok());
  MemBlockDevice avq_device(8192), heap_device(8192);
  auto avq = Table::CreateAvq(rel->schema, &avq_device).value();
  auto heap = Table::CreateHeap(rel->schema, &heap_device).value();
  // Clustered draws can collide; deduplicate before loading.
  std::set<OrdinalTuple> unique(rel->tuples.begin(), rel->tuples.end());
  std::vector<OrdinalTuple> tuples(unique.begin(), unique.end());
  ASSERT_TRUE(avq->BulkLoad(tuples).ok());
  ASSERT_TRUE(heap->BulkLoad(tuples).ok());
  // >= 3x block-count reduction on prefix-clustered data.
  EXPECT_LT(avq->DataBlockCount() * 3, heap->DataBlockCount());
  EXPECT_EQ(avq->ScanAll().value(), heap->ScanAll().value());
}

}  // namespace
}  // namespace avqdb
