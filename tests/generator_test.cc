#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/workload/distributions.h"

namespace avqdb {
namespace {

TEST(Generator, DeterministicForSeed) {
  RelationSpec spec = PaperTestSpec(1, 500, 7);
  auto a = GenerateRelation(spec);
  auto b = GenerateRelation(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tuples, b->tuples);
  EXPECT_EQ(a->schema->radices(), b->schema->radices());
  spec.seed = 8;
  auto c = GenerateRelation(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->tuples, c->tuples);
}

TEST(Generator, RespectsArityAndDomains) {
  auto rel = GenerateRelation(PaperTestSpec(3, 1000, 5));
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema->num_attributes(), 15u);
  EXPECT_EQ(rel->tuples.size(), 1000u);
  for (const auto& t : rel->tuples) {
    EXPECT_TRUE(ValidateTuple(*rel->schema, t).ok());
  }
}

TEST(Generator, SmallSpreadKeepsDomainsNearBase) {
  RelationSpec spec = PaperTestSpec(3, 10, 5);  // spread 0.1, base 4
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  for (uint64_t radix : rel->schema->radices()) {
    EXPECT_GE(radix, 3u);
    EXPECT_LE(radix, 5u);
  }
}

TEST(Generator, LargeSpreadVariesDomains) {
  RelationSpec spec = PaperTestSpec(4, 10, 5);  // spread 3.0
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  uint64_t lo = ~0ull, hi = 0;
  for (uint64_t radix : rel->schema->radices()) {
    lo = std::min(lo, radix);
    hi = std::max(hi, radix);
  }
  // "Differences of more than 100% of the average domain size."
  EXPECT_GT(hi, 2 * lo);
}

TEST(Generator, ExplicitDomainSizes) {
  RelationSpec spec;
  spec.explicit_domain_sizes = {4, 9, 16};
  spec.num_attributes = 3;
  spec.num_tuples = 100;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema->radices(), (std::vector<uint64_t>{4, 9, 16}));
}

TEST(Generator, ExplicitSizesArityMismatchRejected) {
  RelationSpec spec;
  spec.explicit_domain_sizes = {4, 9};
  spec.num_attributes = 3;
  EXPECT_TRUE(GenerateRelation(spec).status().IsInvalidArgument());
}

TEST(Generator, UniqueLastAttribute) {
  RelationSpec spec = PaperQueryRelationSpec(2000, 3);
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  std::set<uint64_t> keys;
  for (const auto& t : rel->tuples) keys.insert(t.back());
  EXPECT_EQ(keys.size(), 2000u);  // sequential unique key
  // Tuple width is in the paper's 38-byte neighbourhood.
  EXPECT_GE(rel->schema->tuple_width(), 28u);
  EXPECT_LE(rel->schema->tuple_width(), 44u);
}

TEST(Generator, DedupeYieldsDistinctTuples) {
  RelationSpec spec;
  spec.explicit_domain_sizes = {16, 16, 16};
  spec.num_attributes = 3;
  spec.num_tuples = 600;
  spec.dedupe = true;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  std::set<OrdinalTuple> unique(rel->tuples.begin(), rel->tuples.end());
  EXPECT_EQ(unique.size(), 600u);
}

TEST(Generator, DedupeImpossibleWhenDomainTooSmall) {
  RelationSpec spec;
  spec.explicit_domain_sizes = {2, 2};
  spec.num_attributes = 2;
  spec.num_tuples = 10;  // only 4 distinct tuples exist
  spec.dedupe = true;
  EXPECT_TRUE(GenerateRelation(spec).status().IsResourceExhausted());
}

TEST(Generator, ClusteredTuplesSharePrefixes) {
  auto rel = GenerateRelation(ClusteredRelationSpec(2000, 10, 9));
  ASSERT_TRUE(rel.ok());
  std::set<OrdinalTuple> prefixes;
  const size_t prefix_len = rel->schema->num_attributes() - 3;
  for (const auto& t : rel->tuples) {
    prefixes.insert(OrdinalTuple(t.begin(),
                                 t.begin() + static_cast<ptrdiff_t>(prefix_len)));
  }
  EXPECT_LE(prefixes.size(), 10u);
  EXPECT_GE(prefixes.size(), 2u);
}

TEST(Generator, SkewConcentratesMass) {
  Random rng(3);
  const uint64_t cardinality = 100;
  size_t hot = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (SampleSkewed(rng, cardinality) < 40) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / draws, 0.6, 0.02);
}

TEST(Generator, ZipfFavorsSmallValues) {
  Random rng(4);
  ZipfSampler zipf(1000, 1.2);
  size_t top10 = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Sample(rng) < 10) ++top10;
  }
  // Zipf(1.2) over 1000 values puts well over a third of the mass on the
  // first ten.
  EXPECT_GT(static_cast<double>(top10) / draws, 0.35);
}

TEST(Generator, InvalidSpecsRejected) {
  RelationSpec spec;
  spec.num_attributes = 0;
  EXPECT_TRUE(GenerateRelation(spec).status().IsInvalidArgument());
  RelationSpec conflicting;
  conflicting.unique_last_attribute = true;
  conflicting.dedupe = true;
  EXPECT_TRUE(GenerateRelation(conflicting).status().IsInvalidArgument());
}

}  // namespace
}  // namespace avqdb
