// Query-path read caching: the cursor-driven scan must be result- and
// block-count-identical to the historical full-decode scan; a warm
// DecodedBlockCache must change only the counters, never the answer;
// mutations must invalidate; and clustered point lookups must decode
// strictly fewer tuples than the touched blocks hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/db/join.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/storage/decoded_block_cache.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

struct CacheFixture {
  explicit CacheFixture(bool avq, size_t block_size = 512)
      : device(block_size) {
    auto rel = GenerateRelation([&] {
      RelationSpec spec;
      spec.explicit_domain_sizes = {8, 16, 32, 64};
      spec.num_attributes = 4;
      spec.num_tuples = 1800;
      spec.dedupe = true;
      spec.seed = 4242;
      return spec;
    }());
    tuples = rel.value().tuples;
    schema = rel.value().schema;
    if (avq) {
      CodecOptions options;
      options.block_size = block_size;
      table = Table::CreateAvq(schema, &device, options).value();
    } else {
      table = Table::CreateHeap(schema, &device).value();
    }
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
  }

  MemBlockDevice device;
  SchemaPtr schema;
  std::vector<OrdinalTuple> tuples;
  std::unique_ptr<Table> table;
};

// Decodes every block in full via ReadDataBlock and filters — the
// reference the streaming path must reproduce exactly.
std::vector<OrdinalTuple> FullDecodeReference(const Table& table,
                                              size_t attr, uint64_t lo,
                                              uint64_t hi) {
  std::vector<OrdinalTuple> all = table.ScanAll().value();
  std::vector<OrdinalTuple> out;
  for (const OrdinalTuple& t : all) {
    if (t[attr] >= lo && t[attr] <= hi) out.push_back(t);
  }
  return out;
}

class QueryCache : public ::testing::TestWithParam<bool> {};

// The determinism matrix: every access path, with and without a cache,
// must return the same tuples and the same block counts as the
// full-decode reference.
TEST_P(QueryCache, CursorPathMatchesFullDecodeOnEveryPath) {
  // The cache must outlive the table (declared first): ~Table drops its
  // entries via InvalidateOwner.
  DecodedBlockCache cache(UINT64_MAX);
  CacheFixture f(GetParam());
  ASSERT_TRUE(f.table->CreateSecondaryIndex(3).ok());
  const RangeQuery queries[] = {
      {0, 2, 5},    // clustered range
      {0, 3, 3},    // clustered point
      {3, 7, 7},    // secondary index
      {2, 10, 20},  // full scan
      {1, 30, 5},   // empty range
  };
  // Pass 0: no cache. Pass 1: cold unbounded cache. Pass 2: warm cache.
  std::vector<QueryStats> baseline(std::size(queries));
  for (int pass = 0; pass < 3; ++pass) {
    if (pass == 1) f.table->SetDecodedBlockCache(&cache);
    for (size_t q = 0; q < std::size(queries); ++q) {
      const RangeQuery& query = queries[q];
      QueryStats stats;
      auto results = ExecuteRangeSelect(*f.table, query, &stats);
      ASSERT_TRUE(results.ok()) << results.status().ToString();
      EXPECT_EQ(results.value(),
                FullDecodeReference(*f.table, query.attribute, query.lo,
                                    query.hi))
          << "pass " << pass << " query " << q;
      if (pass == 0) {
        baseline[q] = stats;
        // Without a cache every touched block is one decode (miss).
        EXPECT_EQ(stats.decoded_cache_hits, 0u);
      } else {
        EXPECT_EQ(stats.path, baseline[q].path);
        EXPECT_EQ(stats.tuples_matched, baseline[q].tuples_matched);
        // Blocks served from the decoded cache skip the pager, so hits +
        // misses must cover the same set of blocks the baseline decoded.
        EXPECT_EQ(stats.decoded_cache_hits + stats.decoded_cache_misses,
                  baseline[q].decoded_cache_misses)
            << "pass " << pass << " query " << q;
      }
      if (pass == 2 && baseline[q].decoded_cache_misses > 0) {
        // Everything the first cached pass walked in full is resident.
        EXPECT_GT(stats.decoded_cache_hits, 0u) << "query " << q;
      }
    }
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST_P(QueryCache, ConjunctiveAndAggregateAgreeWithWarmCache) {
  DecodedBlockCache cache(UINT64_MAX);  // must outlive the table
  CacheFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{0, 1, 6}, {2, 4, 25}};

  QueryStats cold_stats;
  auto cold = ExecuteConjunctiveSelect(*f.table, query, &cold_stats);
  ASSERT_TRUE(cold.ok());
  auto cold_agg = ExecuteAggregate(*f.table, query, 1, nullptr);
  ASSERT_TRUE(cold_agg.ok());

  f.table->SetDecodedBlockCache(&cache);
  (void)ExecuteConjunctiveSelect(*f.table, query, nullptr);  // fill
  QueryStats warm_stats;
  auto warm = ExecuteConjunctiveSelect(*f.table, query, &warm_stats);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value(), cold.value());
  EXPECT_EQ(warm_stats.tuples_matched, cold_stats.tuples_matched);
  auto warm_agg = ExecuteAggregate(*f.table, query, 1, nullptr);
  ASSERT_TRUE(warm_agg.ok());
  EXPECT_EQ(warm_agg.value().count, cold_agg.value().count);
  EXPECT_EQ(warm_agg.value().min, cold_agg.value().min);
  EXPECT_EQ(warm_agg.value().max, cold_agg.value().max);
  EXPECT_EQ(static_cast<uint64_t>(warm_agg.value().sum),
            static_cast<uint64_t>(cold_agg.value().sum));
}

// Writes must invalidate: a query after Insert/Delete sees the new
// contents even though the old block was resident in the cache.
TEST_P(QueryCache, MutationsInvalidateCachedBlocks) {
  DecodedBlockCache cache(UINT64_MAX);  // must outlive the table
  CacheFixture f(GetParam());
  f.table->SetDecodedBlockCache(&cache);
  const RangeQuery query{0, 0, 7};  // whole domain: every tuple
  auto before = ExecuteRangeSelect(*f.table, query, nullptr);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().size(), f.tuples.size());

  // Pick a tuple not in the table (dedupe left domain slack).
  OrdinalTuple fresh;
  auto sorted = before.value();
  for (uint64_t a3 = 0; a3 < 64 && fresh.empty(); ++a3) {
    OrdinalTuple candidate{3, 7, 11, a3};
    if (!std::binary_search(sorted.begin(), sorted.end(), candidate,
                            [](const OrdinalTuple& x, const OrdinalTuple& y) {
                              return CompareTuples(x, y) < 0;
                            })) {
      fresh = candidate;
    }
  }
  ASSERT_FALSE(fresh.empty());
  ASSERT_TRUE(f.table->Insert(fresh).ok());
  auto after_insert = ExecuteRangeSelect(*f.table, query, nullptr);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_EQ(after_insert.value().size(), f.tuples.size() + 1);
  EXPECT_TRUE(std::binary_search(
      after_insert.value().begin(), after_insert.value().end(), fresh,
      [](const OrdinalTuple& x, const OrdinalTuple& y) {
        return CompareTuples(x, y) < 0;
      }));

  ASSERT_TRUE(f.table->Delete(fresh).ok());
  auto after_delete = ExecuteRangeSelect(*f.table, query, nullptr);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete.value(), before.value());
}

// The cache must not leak across tables: entries are keyed by owner and
// dropped when the table goes away.
TEST_P(QueryCache, TableDestructionDropsItsEntries) {
  DecodedBlockCache cache(UINT64_MAX);
  {
    CacheFixture f(GetParam());
    f.table->SetDecodedBlockCache(&cache);
    (void)ExecuteRangeSelect(*f.table, {0, 0, 7}, nullptr);
    EXPECT_GT(cache.stats().entries, 0u);
  }
  EXPECT_EQ(cache.stats().entries, 0u);
}

// Early exit: a clustered point lookup decodes strictly fewer tuples
// than the cardinality of the blocks it touches.
TEST(QueryCacheAvq, PointLookupDecodesPartialBlocks) {
  CacheFixture f(/*avq=*/true);
  QueryStats stats;
  auto results = ExecuteRangeSelect(*f.table, {0, 3, 3}, &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_GT(results.value().size(), 0u);
  // Replicate the clustered walk to find exactly the blocks the query
  // decoded: from the covering block of `start` through the last block
  // whose minimum is <= `end`.
  uint64_t touched_cardinality = 0;
  {
    const OrdinalTuple start{3, 0, 0, 0};
    const OrdinalTuple end{3, 15, 31, 63};
    std::vector<std::pair<OrdinalTuple, uint64_t>> blocks;  // (min, count)
    auto iter = f.table->primary_index().Begin().value();
    while (iter.Valid()) {
      auto block =
          f.table->ReadDataBlock(static_cast<BlockId>(iter.value()));
      ASSERT_TRUE(block.ok());
      ASSERT_FALSE(block.value().empty());
      blocks.emplace_back(block.value().front(), block.value().size());
      ASSERT_TRUE(iter.Next().ok());
    }
    size_t cover = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (CompareTuples(blocks[b].first, start) <= 0) cover = b;
    }
    for (size_t b = cover; b < blocks.size(); ++b) {
      if (CompareTuples(blocks[b].first, end) > 0) break;
      touched_cardinality += blocks[b].second;
    }
  }
  ASSERT_GT(touched_cardinality, 0u);
  EXPECT_GT(stats.tuples_decoded, 0u);
  EXPECT_LT(stats.tuples_decoded, touched_cardinality);
  EXPECT_EQ(stats.tuples_matched, results.value().size());
}

// Joins share the decoded cache through Table::Cursor / ReadDecodedBlock.
TEST_P(QueryCache, JoinResultsUnchangedByWarmCache) {
  DecodedBlockCache cache(UINT64_MAX);  // must outlive both tables
  CacheFixture left(GetParam());
  CacheFixture right(GetParam());
  ASSERT_TRUE(right.table->CreateSecondaryIndex(1).ok());
  auto cold = ExecuteEquiJoin(*left.table, 1, *right.table, 1,
                              JoinStrategy::kIndexNestedLoop, nullptr);
  ASSERT_TRUE(cold.ok());
  left.table->SetDecodedBlockCache(&cache);
  right.table->SetDecodedBlockCache(&cache);
  auto warm1 = ExecuteEquiJoin(*left.table, 1, *right.table, 1,
                               JoinStrategy::kIndexNestedLoop, nullptr);
  ASSERT_TRUE(warm1.ok());
  auto warm2 = ExecuteEquiJoin(*left.table, 1, *right.table, 1,
                               JoinStrategy::kIndexNestedLoop, nullptr);
  ASSERT_TRUE(warm2.ok());
  EXPECT_EQ(warm1.value(), cold.value());
  EXPECT_EQ(warm2.value(), cold.value());
  EXPECT_GT(cache.stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Stores, QueryCache, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "avq" : "heap";
                         });

}  // namespace
}  // namespace avqdb
