// Multi-client soak: several client threads hammer one server with
// pipelined mixed queries and randomized abrupt disconnects, then the
// accounting must reconcile — every request received was answered OK or
// with an error, the server still serves, and a clean shutdown drains.
// Runtime is bounded by construction (fixed thread × connection ×
// depth grid over a small table), so the test stays CI- and
// sanitizer-sized.

#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using testing::CounterValue;
using testing::RangeOn;
using testing::ServerFixture;

struct CannedQuery {
  QueryRequest request;
  std::vector<OrdinalTuple> expected;
};

TEST(ServerSoak, ConcurrentPipelinedClientsWithRandomDisconnects) {
  testing::FixtureOptions options;
  options.num_tuples = 5000;
  options.server.num_workers = 2;
  options.server.chunk_tuples = 256;
  ServerFixture fixture(options);

  // Ground truth computed up front, single-threaded; worker threads
  // only compare.
  std::vector<CannedQuery> canned;
  const std::vector<ConjunctiveQuery> shapes = {
      RangeOn(0, 1, 1),   // point on the clustered prefix
      RangeOn(0, 2, 5),   // clustered range
      RangeOn(2, 10, 40),  // mid-attribute range (scan)
      RangeOn(4, 0, 15),   // trailing-attribute range (scan)
      ConjunctiveQuery{},  // full scan
      [] {                 // conjunction
        ConjunctiveQuery q = RangeOn(1, 2, 12);
        q.predicates.push_back({3, 0, 40});
        return q;
      }(),
  };
  for (const ConjunctiveQuery& shape : shapes) {
    CannedQuery canned_query;
    canned_query.request.table = "orders";
    canned_query.request.query = shape;
    canned_query.expected = fixture.DirectSelect(shape);
    canned.push_back(std::move(canned_query));
  }

  constexpr int kThreads = 4;
  constexpr int kConnectionsPerThread = 6;
  constexpr int kMaxDepth = 4;

  const uint64_t received_before =
      CounterValue(obs::kServerRequestsReceived);

  std::vector<std::thread> clients;
  std::vector<int> verified_per_thread(kThreads, 0);
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(0x50AC + t);
      for (int c = 0; c < kConnectionsPerThread; ++c) {
        auto client = Client::Connect("127.0.0.1", fixture.port());
        if (!client.ok()) {
          failures[t] = "connect: " + client.status().ToString();
          return;
        }
        const int depth = 1 + static_cast<int>(rng() % kMaxDepth);
        std::vector<size_t> sent;
        for (int d = 0; d < depth; ++d) {
          const size_t pick = rng() % canned.size();
          Status status = (*client)->SendQuery(
              static_cast<uint64_t>(d + 1), canned[pick].request);
          if (!status.ok()) {
            failures[t] = "send: " + status.ToString();
            return;
          }
          sent.push_back(pick);
        }
        // A quarter of connections vanish abruptly mid-pipeline; the
        // rest read and verify everything, then say GOODBYE.
        if (rng() % 4 == 0) {
          continue;  // ~Client closes the socket with requests in flight
        }
        for (size_t d = 0; d < sent.size(); ++d) {
          auto response = (*client)->ReadResponse();
          if (!response.ok()) {
            failures[t] = "read: " + response.status().ToString();
            return;
          }
          if (response->request_id != d + 1 || !response->status.ok() ||
              response->tuples != canned[sent[d]].expected) {
            failures[t] = "response mismatch on request " +
                          std::to_string(d + 1);
            return;
          }
          ++verified_per_thread[t];
        }
        Status goodbye = (*client)->SendGoodbye();
        (void)goodbye;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
    EXPECT_GT(verified_per_thread[t], 0) << "thread " << t;
  }

  // Accounting reconciles once the strands drain: every request that
  // arrived was answered, successfully or with an error (cancelled
  // requests surface as errors server-side).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t received = 0, answered = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    received = CounterValue(obs::kServerRequestsReceived);
    answered = CounterValue(obs::kServerRequestsOk) +
               CounterValue(obs::kServerRequestsErrors);
    if (answered >= received && fixture.server().active_sessions() == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(answered, received);
  EXPECT_GT(received, received_before);

  // The survivor check: a fresh client gets exact answers after the
  // storm, and shutdown drains cleanly.
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  auto result = client->Query(canned[2].request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, canned[2].expected);
  fixture.server().Shutdown();
  EXPECT_EQ(fixture.server().active_sessions(), 0u);
}

}  // namespace
}  // namespace avqdb::server
