// The canned Fig 2.2 employee relation: spot-checks against the paper's
// printed encodings and φ values.

#include "src/workload/paper_relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/ordinal/phi.h"

namespace avqdb {
namespace {

TEST(PaperRelation, FiftyRowsWithSequentialEmployeeNumbers) {
  auto rows = PaperEmployeeRows();
  ASSERT_EQ(rows.size(), 50u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][4], Value(static_cast<int64_t>(i)));
  }
}

TEST(PaperRelation, SchemaMatchesPaperDomains) {
  auto schema = PaperEmployeeSchema();
  EXPECT_EQ(schema->radices(), (std::vector<uint64_t>{8, 16, 64, 64, 64}));
  EXPECT_EQ(schema->tuple_width(), 5u);
}

TEST(PaperRelation, EncodingsMatchTableB) {
  auto tuples = PaperEmployeeTuples();
  ASSERT_EQ(tuples.size(), 50u);
  // Spot rows straight from Fig 2.2 table (b).
  EXPECT_EQ(tuples[0], (OrdinalTuple{3, 9, 24, 32, 0}));
  EXPECT_EQ(tuples[1], (OrdinalTuple{4, 12, 12, 31, 1}));
  EXPECT_EQ(tuples[2], (OrdinalTuple{2, 6, 29, 21, 2}));
  EXPECT_EQ(tuples[15], (OrdinalTuple{5, 10, 33, 22, 15}));
  EXPECT_EQ(tuples[35], (OrdinalTuple{3, 8, 36, 39, 35}));
  EXPECT_EQ(tuples[44], (OrdinalTuple{4, 4, 55, 23, 44}));
  EXPECT_EQ(tuples[49], (OrdinalTuple{4, 7, 39, 31, 49}));
}

TEST(PaperRelation, PhiValuesMatchTableC) {
  auto schema = PaperEmployeeSchema();
  auto tuples = PaperEmployeeTuples();
  // Pairs (row index in table (a), φ value printed in table (c)).
  const std::pair<size_t, uint64_t> checks[] = {
      {36, 10069284},  // (2,06,26,20,36)
      {2, 10081602},   // (2,06,29,21,02)
      {4, 11122372},   // (2,10,27,27,04)
      {9, 13760073},   // (3,04,31,25,09)
      {5, 13989445},   // (3,05,23,25,05)
      {35, 14830051},  // (3,08,36,39,35)
      {19, 14812755},  // (3,08,32,25,19)
      {47, 22382255},  // (5,05,24,26,47)
      {15, 23729551},  // (5,10,33,22,15)
  };
  for (const auto& [row, phi] : checks) {
    auto value = Phi(schema->radices(), tuples[row]);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(static_cast<uint64_t>(value.value()), phi) << "row " << row;
  }
}

TEST(PaperRelation, AllTuplesDistinct) {
  auto tuples = PaperEmployeeTuples();
  std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(PaperRelation, SortedOrderMatchesTableC) {
  // The first tuples of table (c): rows 36, 2, 4 of table (a) lead.
  auto schema = PaperEmployeeSchema();
  auto tuples = PaperEmployeeTuples();
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(tuples[0], (OrdinalTuple{2, 6, 26, 20, 36}));
  EXPECT_EQ(tuples[1], (OrdinalTuple{2, 6, 29, 21, 2}));
  EXPECT_EQ(tuples[2], (OrdinalTuple{2, 10, 27, 27, 4}));
  EXPECT_EQ(tuples[49], (OrdinalTuple{5, 10, 33, 22, 15}));
}

}  // namespace
}  // namespace avqdb
