#include "src/db/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/db/query.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

class TableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("/tmp/avqdb_table_io_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TableIoTest, SaveLoadRoundTripAvq) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  auto tuples = testing::RandomTuples(*schema, 2000, 77);
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  ASSERT_TRUE(table->BulkLoad(tuples).ok());

  ASSERT_TRUE(SaveTable(*table, path_).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->table->num_tuples(), tuples.size());
  EXPECT_EQ(loaded->table->DataBlockCount(), table->DataBlockCount());
  EXPECT_EQ(loaded->table->ScanAll().value(), tuples);
  EXPECT_TRUE(loaded->table->codec().is_avq());
}

TEST_F(TableIoTest, SaveLoadRoundTripHeap) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  auto table = Table::CreateHeap(schema, &device).value();
  auto tuples = testing::RandomTuples(*schema, 500, 7);
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->table->codec().is_avq());
  EXPECT_EQ(loaded->table->ScanAll().value(), tuples);
}

TEST_F(TableIoTest, LoadedTableIsFullyOperational) {
  auto schema = PaperEmployeeSchema();
  // The metadata block stores the categorical value lists, so it needs
  // more room than the 5-byte tuples do.
  MemBlockDevice device(1024);
  CodecOptions options;
  options.block_size = 1024;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (const Row& row : PaperEmployeeRows()) {
    ASSERT_TRUE(table->InsertRow(row).ok());
  }
  ASSERT_TRUE(SaveTable(*table, path_).ok());

  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Table& reopened = *loaded->table;
  // Queries (including categorical decoding) work on the loaded table.
  QueryStats stats;
  auto rows = ExecuteRangeSelectRows(reopened, "department",
                                     Value("management"),
                                     Value("management"), &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  // Mutations after load work too (staged in the overlay device until
  // Commit() publishes them).
  ASSERT_TRUE(reopened.InsertRow({Value("personnel"), Value("director"),
                                  Value(int64_t{1}), Value(int64_t{2}),
                                  Value(int64_t{60})})
                  .ok());
  EXPECT_EQ(reopened.num_tuples(), 51u);
  ASSERT_TRUE(reopened
                  .DeleteRow({Value("personnel"), Value("director"),
                              Value(int64_t{1}), Value(int64_t{2}),
                              Value(int64_t{60})})
                  .ok());
  EXPECT_EQ(reopened.num_tuples(), 50u);
}

TEST_F(TableIoTest, EmptyTableRoundTrip) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->table->num_tuples(), 0u);
  ASSERT_TRUE(loaded->table->Insert({1, 2, 3, 4, 5}).ok());
}

TEST_F(TableIoTest, CommitMakesMutationsDurable) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(table->Insert({i % 8, i % 16, i % 64, i % 64, i}).ok());
  }
  ASSERT_TRUE(SaveTable(*table, path_).ok());

  {
    auto loaded = LoadTable(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(loaded->table->Insert({7, 15, 63, 63, 61}).ok());
    ASSERT_TRUE(loaded->table->Delete({0, 0, 0, 0, 0}).ok());
    ASSERT_TRUE(loaded->Commit().ok());
    EXPECT_EQ(loaded->commit_seq, 2u);
  }
  auto reopened = LoadTable(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->table->num_tuples(), 40u);
  EXPECT_TRUE(reopened->table->Contains({7, 15, 63, 63, 61}).value());
  EXPECT_FALSE(reopened->table->Contains({0, 0, 0, 0, 0}).value());
}

TEST_F(TableIoTest, UncommittedMutationsAreDiscardedAtClose) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(table->Insert({i % 8, i % 16, i % 64, i % 64, i}).ok());
  }
  ASSERT_TRUE(SaveTable(*table, path_).ok());

  {
    auto loaded = LoadTable(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(loaded->table->Insert({7, 15, 63, 63, 61}).ok());
    // No Commit: the overlay's redirected blocks are never published.
  }
  auto reopened = LoadTable(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->table->num_tuples(), 40u);
  EXPECT_FALSE(reopened->table->Contains({7, 15, 63, 63, 61}).value());
}

TEST_F(TableIoTest, RepeatedCommitsAlternateSlots) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(table->Insert({i % 8, i % 16, i % 64, i % 64, i}).ok());
  }
  ASSERT_TRUE(SaveTable(*table, path_).ok());

  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->active_slot, 0u);
  for (uint64_t round = 0; round < 4; ++round) {
    ASSERT_TRUE(
        loaded->table->Insert({7, 15, 63, 62, 50 + round}).ok());
    ASSERT_TRUE(loaded->Commit().ok()) << "round " << round;
    EXPECT_EQ(loaded->active_slot, (round + 1) % 2);
    EXPECT_EQ(loaded->commit_seq, round + 2);
  }
  auto reopened = LoadTable(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->table->num_tuples(), 44u);
  EXPECT_EQ(reopened->commit_seq, 5u);
  EXPECT_EQ(reopened->table->ScanAll().value(),
            loaded->table->ScanAll().value());
}

TEST_F(TableIoTest, LoadedTableReportsVersionAndSeq) {
  // (The legacy v1 load + Commit upgrade path is exercised with a
  // hand-written v1 image in table_salvage_test.cc.)
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(table->Insert({1, 2, 3, 4, 5}).ok());
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 2u);
  EXPECT_EQ(loaded->commit_seq, 1u);
}

TEST_F(TableIoTest, NonAtomicSaveMatchesAtomicImage) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(table->Insert({i % 8, i % 16, i % 64, i % 64, i}).ok());
  }
  SaveOptions plain;
  plain.atomic = false;
  plain.sync = false;
  ASSERT_TRUE(SaveTable(*table, path_, plain).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->table->ScanAll().value(), table->ScanAll().value());
}

TEST_F(TableIoTest, LoadRejectsMissingAndGarbageFiles) {
  EXPECT_TRUE(LoadTable(path_ + ".missing").status().IsIOError());
  {
    FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a table image........", f);
    std::fclose(f);
  }
  EXPECT_TRUE(LoadTable(path_).status().IsCorruption());
}

TEST_F(TableIoTest, LoadDetectsMetadataCorruption) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(table->Insert({1, 2, 3, 4, 5}).ok());
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  // Flip a byte inside the schema region of block 0.
  {
    FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 34, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  EXPECT_TRUE(LoadTable(path_).status().IsCorruption());
}

TEST_F(TableIoTest, LoadDetectsDataBlockCorruption) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &device, options).value();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(table->Insert({i % 8, i % 16, i % 64, i % 64, i % 64}).ok());
  }
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  {
    FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // Data blocks start at block 2; blocks 0/1 are the metadata slots.
    std::fseek(f, 2 * 512 + 30, SEEK_SET);  // inside the first data block
    std::fputc(0xEE, f);
    std::fclose(f);
  }
  // Attach decodes every block, so the corruption surfaces at load time.
  EXPECT_TRUE(LoadTable(path_).status().IsCorruption());
}

}  // namespace
}  // namespace avqdb
