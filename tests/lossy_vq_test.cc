#include "src/vq/lossy_vq.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avqdb {
namespace {

LbgCodebook ManualCodebook(std::vector<std::vector<double>> words) {
  LbgCodebook book;
  book.codewords = std::move(words);
  return book;
}

TEST(LossyVq, CreateValidation) {
  auto schema = testing::IntSchema({64, 64});
  EXPECT_TRUE(LossyVectorQuantizer::Create(schema, ManualCodebook({}))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      LossyVectorQuantizer::Create(schema, ManualCodebook({{1.0}}))
          .status()
          .IsInvalidArgument());
}

TEST(LossyVq, EncodePicksNearestCodeword) {
  auto schema = testing::IntSchema({64, 64});
  auto q = LossyVectorQuantizer::Create(
               schema, ManualCodebook({{0.0, 0.0}, {50.0, 50.0}}))
               .value();
  EXPECT_EQ(q.Encode({1, 2}), 0u);
  EXPECT_EQ(q.Encode({60, 40}), 1u);
}

TEST(LossyVq, DecodeClampsIntoDomains) {
  auto schema = testing::IntSchema({8, 8});
  auto q = LossyVectorQuantizer::Create(
               schema, ManualCodebook({{-3.0, 200.0}, {2.4, 2.6}}))
               .value();
  EXPECT_EQ(q.Decode(0).value(), (OrdinalTuple{0, 7}));
  EXPECT_EQ(q.Decode(1).value(), (OrdinalTuple{2, 3}));  // rounding
  EXPECT_TRUE(q.Decode(2).status().IsOutOfRange());
}

TEST(LossyVq, BitsPerCodeword) {
  auto schema = testing::IntSchema({64});
  auto make = [&](size_t k) {
    std::vector<std::vector<double>> words(k, std::vector<double>{0.0});
    for (size_t i = 0; i < k; ++i) words[i][0] = static_cast<double>(i);
    return LossyVectorQuantizer::Create(schema, ManualCodebook(words))
        .value();
  };
  EXPECT_EQ(make(2).bits_per_codeword(), 1u);
  EXPECT_EQ(make(3).bits_per_codeword(), 2u);
  EXPECT_EQ(make(4).bits_per_codeword(), 2u);
  EXPECT_EQ(make(9).bits_per_codeword(), 4u);
}

TEST(LossyVq, ConventionalVqIsLossyAvqPremise) {
  // §2.2's motivating fact: coding a relation with a small codebook loses
  // information.
  auto schema = testing::IntSchema({64, 64, 64});
  auto tuples = testing::RandomTuples(*schema, 400, 99);
  LbgOptions options;
  options.codebook_size = 16;
  auto codebook = TrainLbgCodebook(tuples, options);
  ASSERT_TRUE(codebook.ok());
  auto q = LossyVectorQuantizer::Create(schema, codebook.value()).value();
  LossyCodingStats stats = q.CodeRelation(tuples);
  EXPECT_EQ(stats.tuple_count, 400u);
  EXPECT_EQ(stats.bits_per_codeword, 4u);
  EXPECT_GT(stats.mean_squared_error, 0.0);
  EXPECT_LT(stats.exact_fraction, 0.5);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(LossyVq, PerfectCodebookIsExact) {
  auto schema = testing::IntSchema({16, 16});
  std::vector<OrdinalTuple> tuples = {{1, 2}, {10, 3}, {5, 5}};
  auto q = LossyVectorQuantizer::Create(
               schema,
               ManualCodebook({{1.0, 2.0}, {10.0, 3.0}, {5.0, 5.0}}))
               .value();
  LossyCodingStats stats = q.CodeRelation(tuples);
  EXPECT_DOUBLE_EQ(stats.mean_squared_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.exact_fraction, 1.0);
}

TEST(LossyVq, EmptyRelationStats) {
  auto schema = testing::IntSchema({16});
  auto q = LossyVectorQuantizer::Create(schema, ManualCodebook({{0.0}}))
               .value();
  LossyCodingStats stats = q.CodeRelation({});
  EXPECT_EQ(stats.tuple_count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_squared_error, 0.0);
}

}  // namespace
}  // namespace avqdb
