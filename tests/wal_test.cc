// WriteAheadLog unit tests: record framing, multi-page chains, torn-tail
// truncation, UUID binding, checkpoint truncation, and unsynced-loss
// semantics under the fault-injection device.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/block_device.h"
#include "src/storage/fault_injection_device.h"
#include "src/storage/wal.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;

using Replayed = std::vector<std::pair<uint64_t, std::string>>;

Slice Lit(const char* s) { return Slice(s, std::strlen(s)); }

// Opens `device` and collects every replayed (seq, payload).
Result<std::unique_ptr<WriteAheadLog>> OpenCollecting(
    BlockDevice* device, const WalUuid& uuid, Replayed* out,
    WalReplayStats* stats = nullptr) {
  return WriteAheadLog::Open(
      device, uuid,
      [out](uint64_t seq, Slice payload) {
        out->emplace_back(seq, payload.ToString());
        return Status::OK();
      },
      stats);
}

TEST(Wal, CreateAppendSyncReplayRoundTrip) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wal = WriteAheadLog::Create(&device, uuid);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->last_seq(), 0u);
  EXPECT_EQ((*wal)->start_seq(), 1u);

  ASSERT_TRUE((*wal)->Append(1, Lit("alpha")).ok());
  ASSERT_TRUE((*wal)->Append(2, Lit("beta")).ok());
  ASSERT_TRUE((*wal)->Append(3, Lit("gamma")).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  wal->reset();

  Replayed replayed;
  WalReplayStats stats;
  auto reopened = OpenCollecting(&device, uuid, &replayed, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0], (std::pair<uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(replayed[1], (std::pair<uint64_t, std::string>{2, "beta"}));
  EXPECT_EQ(replayed[2], (std::pair<uint64_t, std::string>{3, "gamma"}));
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.first_seq, 1u);
  EXPECT_EQ(stats.last_seq, 3u);
  EXPECT_EQ((*reopened)->last_seq(), 3u);

  // The reopened log keeps accepting appends where it left off.
  ASSERT_TRUE((*reopened)->Append(4, Lit("delta")).ok());
  ASSERT_TRUE((*reopened)->Sync().ok());
}

TEST(Wal, EmptyLogReplaysNothing) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  ASSERT_TRUE(WriteAheadLog::Create(&device, uuid).ok());
  Replayed replayed;
  WalReplayStats stats;
  auto wal = OpenCollecting(&device, uuid, &replayed, &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(Wal, UuidMismatchRefusesReplay) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  {
    auto wal = WriteAheadLog::Create(&device, uuid);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, Lit("payload")).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  WalUuid other = uuid;
  other[0] ^= 0xff;
  Replayed replayed;
  auto wal = OpenCollecting(&device, other, &replayed);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsInvalidArgument()) << wal.status().ToString();
  EXPECT_TRUE(replayed.empty());
}

TEST(Wal, AppendRejectsNonMonotonicSeq) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wal = WriteAheadLog::Create(&device, uuid);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(5, Lit("x")).ok());
  EXPECT_FALSE((*wal)->Append(5, Lit("y")).ok());
  EXPECT_FALSE((*wal)->Append(4, Lit("z")).ok());
  EXPECT_TRUE((*wal)->Append(6, Lit("w")).ok());
}

TEST(Wal, RecordsSpanManyPages) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wal = WriteAheadLog::Create(&device, uuid);
  ASSERT_TRUE(wal.ok());
  // Payloads larger than a page force every record to straddle at least
  // one page boundary.
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(std::string(300 + 37 * i, static_cast<char>('a' + i)));
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint64_t>(i + 1), Slice(payloads.back()))
            .ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_GT((*wal)->log_pages(), 5u);
  wal->reset();

  Replayed replayed;
  auto reopened = OpenCollecting(&device, uuid, &replayed);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(replayed.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replayed[i].first, i + 1);
    EXPECT_EQ(replayed[i].second, payloads[i]);
  }
}

TEST(Wal, TornTailIsTruncatedAndWriterResumes) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wal = WriteAheadLog::Create(&device, uuid);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, Lit("keep-me")).ok());
  ASSERT_TRUE((*wal)->Append(2, Lit("tear-me")).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  wal->reset();

  // Corrupt a byte inside record 2's payload on the first log page
  // (block 2: blocks 0/1 are the header slots). Record 1 occupies
  // 16 + 7 bytes after the 12-byte page header.
  std::string page;
  ASSERT_TRUE(device.Read(2, &page).ok());
  page[12 + 16 + 7 + 16 + 3] ^= 0x40;
  ASSERT_TRUE(device.Write(2, Slice(page)).ok());

  Replayed replayed;
  WalReplayStats stats;
  auto reopened = OpenCollecting(&device, uuid, &replayed, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].second, "keep-me");
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ((*reopened)->last_seq(), 1u);

  // The writer resumes at the truncation point; the torn suffix is gone
  // for good.
  ASSERT_TRUE((*reopened)->Append(2, Lit("replacement")).ok());
  ASSERT_TRUE((*reopened)->Sync().ok());
  reopened->reset();

  Replayed again;
  auto third = OpenCollecting(&device, uuid, &again);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[1].second, "replacement");
}

TEST(Wal, BitFlippedRecordDetectedAsTornTail) {
  MemBlockDevice base(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  {
    auto wal = WriteAheadLog::Create(&base, uuid);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, Lit("first")).ok());
    ASSERT_TRUE((*wal)->Append(2, Lit("second")).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Reads during Open: header slot 0, header slot 1, then the page.
  // Flip a bit inside record 2's frame on the page read.
  FaultInjectionBlockDevice fault(&base);
  fault.FlipReadBitAt(3, 12 + 16 + 5 + 8, 2);
  Replayed replayed;
  WalReplayStats stats;
  auto wal = OpenCollecting(&fault, uuid, &replayed, &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(stats.torn_tail);
}

TEST(Wal, TruncateStartsFreshGenerationOldRecordsGone) {
  MemBlockDevice device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wal = WriteAheadLog::Create(&device, uuid);
  ASSERT_TRUE(wal.ok());
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    ASSERT_TRUE((*wal)->Append(seq, Lit("record")).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  const uint64_t old_generation = (*wal)->generation();

  // Truncate requires a fully applied log.
  EXPECT_FALSE((*wal)->Truncate(7).ok());
  ASSERT_TRUE((*wal)->Truncate(10).ok());
  EXPECT_GT((*wal)->generation(), old_generation);
  EXPECT_EQ((*wal)->last_seq(), 10u);
  EXPECT_EQ((*wal)->start_seq(), 11u);
  EXPECT_EQ((*wal)->log_pages(), 1u);

  // Records appended after the checkpoint replay alone.
  ASSERT_TRUE((*wal)->Append(11, Lit("post-checkpoint")).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  wal->reset();

  Replayed replayed;
  auto reopened = OpenCollecting(&device, uuid, &replayed);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], (std::pair<uint64_t, std::string>{
                             11, "post-checkpoint"}));
}

TEST(Wal, UnsyncedAppendsVanishOnCrash) {
  MemBlockDevice base(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  FaultInjectionBlockDevice fault(&base);
  {
    auto wal = WriteAheadLog::Create(&fault, uuid);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, Lit("durable")).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->Append(2, Lit("in-flight")).ok());
    // No sync: record 2 was never promised.
    fault.Crash();
  }
  Replayed replayed;
  WalReplayStats stats;
  auto wal = OpenCollecting(&base, uuid, &replayed, &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].second, "durable");
  EXPECT_EQ((*wal)->last_seq(), 1u);
}

TEST(Wal, CreateRejectsNonFreshDevice) {
  MemBlockDevice device(kBlockSize);
  ASSERT_TRUE(device.Allocate().ok());  // device no longer fresh
  auto wal = WriteAheadLog::Create(&device, GenerateWalUuid());
  EXPECT_FALSE(wal.ok());
}

}  // namespace
}  // namespace avqdb
