// Locks the codec to the paper's own worked numbers: φ values from
// Fig 2.2/3.3, the chain differences of Examples 3.2–3.3, and the exact
// coded stream printed at the end of §3.4.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/avq/block_decoder.h"
#include "src/avq/block_encoder.h"
#include "src/common/slice.h"
#include "src/ordinal/mixed_radix.h"
#include "src/ordinal/phi.h"
#include "src/schema/tuple.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

// The fourth block of Fig 2.2 table (c), as shown in Fig 3.3 table (a).
const std::vector<OrdinalTuple> kBlockTuples = {
    {3, 8, 32, 25, 19},   // φ = 14812755
    {3, 8, 32, 34, 12},   // φ = 14813324
    {3, 8, 36, 39, 35},   // φ = 14830051 (representative)
    {3, 9, 24, 32, 0},    // φ = 15042560
    {3, 9, 26, 27, 37},   // φ = 15050469
};

TEST(PaperExample, PhiMatchesFigure33) {
  auto schema = testing::PaperShapeSchema();
  const std::vector<uint64_t> expected = {14812755, 14813324, 14830051,
                                          15042560, 15050469};
  for (size_t i = 0; i < kBlockTuples.size(); ++i) {
    auto phi = Phi(schema->radices(), kBlockTuples[i]);
    ASSERT_TRUE(phi.ok()) << phi.status().ToString();
    EXPECT_EQ(static_cast<uint64_t>(phi.value()), expected[i]) << "tuple " << i;
  }
}

TEST(PaperExample, PhiInverseRecoversTuples) {
  auto schema = testing::PaperShapeSchema();
  for (const auto& tuple : kBlockTuples) {
    auto phi = Phi(schema->radices(), tuple);
    ASSERT_TRUE(phi.ok());
    auto back = PhiInverse(schema->radices(), phi.value());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), tuple);
  }
}

// Example 3.2: the representative-delta of (3,08,32,34,12) is
// (0,00,04,05,23) = 16727.
TEST(PaperExample, RepresentativeDeltaOfExample32) {
  auto schema = testing::PaperShapeSchema();
  OrdinalTuple diff;
  ASSERT_TRUE(mixed_radix::Sub(schema->radices(), kBlockTuples[2],
                               kBlockTuples[1], &diff)
                  .ok());
  EXPECT_EQ(diff, (OrdinalTuple{0, 0, 4, 5, 23}));
  auto phi = Phi(schema->radices(), diff);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(static_cast<uint64_t>(phi.value()), 16727u);
}

// Example 3.3: the chain delta of the first tuple is (0,00,00,08,57) = 569.
TEST(PaperExample, ChainDeltaOfExample33) {
  auto schema = testing::PaperShapeSchema();
  OrdinalTuple diff;
  ASSERT_TRUE(mixed_radix::Sub(schema->radices(), kBlockTuples[1],
                               kBlockTuples[0], &diff)
                  .ok());
  EXPECT_EQ(diff, (OrdinalTuple{0, 0, 0, 8, 57}));
  auto phi = Phi(schema->radices(), diff);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ(static_cast<uint64_t>(phi.value()), 569u);
}

// §3.4 prints the coded stream for this block as the byte sequence
//   3 08 36 39 35 | 3 08 57 | 2 04 05 23 | 2 51 56 29 | 2 01 59 37
// (representative first, then per difference a leading-zero count and the
// remaining bytes). Our payload must reproduce it exactly.
TEST(PaperExample, CodedStreamMatchesSection34) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;  // defaults = the paper's pipeline
  options.checksum = false;
  BlockEncoder encoder(schema, options);
  for (const auto& tuple : kBlockTuples) {
    auto added = encoder.TryAdd(tuple);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    ASSERT_TRUE(added.value());
  }
  EXPECT_EQ(encoder.representative_index(), 2u);

  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok()) << block.status().ToString();

  const std::vector<uint8_t> expected_payload = {
      3, 8, 36, 39, 35,      // representative
      3, 8,  57,             // Δ(t1) = 569, 3 leading zeros
      2, 4,  5,  23,         // Δ(t2) = 16727
      2, 51, 56, 29,         // Δ(t4) = 212509
      2, 1,  59, 37,         // Δ(t5) = 7909
  };
  ASSERT_GE(block.value().size(), kBlockHeaderSize + expected_payload.size());
  const uint8_t* payload =
      reinterpret_cast<const uint8_t*>(block.value().data()) +
      kBlockHeaderSize;
  for (size_t i = 0; i < expected_payload.size(); ++i) {
    EXPECT_EQ(payload[i], expected_payload[i]) << "payload byte " << i;
  }

  // And the coded block decodes back to the original tuples.
  auto decoded = DecodeBlock(*schema, Slice(block.value()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().tuples, kBlockTuples);
  EXPECT_EQ(decoded.value().header.rep_index, 2u);
}

// Theorem 2.1 (losslessness) on the paper block under every codec variant.
TEST(PaperExample, AllVariantsLossless) {
  auto schema = testing::PaperShapeSchema();
  for (CodecVariant variant :
       {CodecVariant::kChainDelta, CodecVariant::kRepresentativeDelta}) {
    for (bool rle : {true, false}) {
      for (RepresentativeChoice rep :
           {RepresentativeChoice::kMiddle, RepresentativeChoice::kFirst}) {
        CodecOptions options;
        options.variant = variant;
        options.run_length_zeros = rle;
        options.representative = rep;
        BlockEncoder encoder(schema, options);
        for (const auto& tuple : kBlockTuples) {
          ASSERT_TRUE(encoder.TryAdd(tuple).value());
        }
        auto block = encoder.Finish();
        ASSERT_TRUE(block.ok());
        auto decoded = DecodeBlock(*schema, Slice(block.value()));
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        EXPECT_EQ(decoded.value().tuples, kBlockTuples)
            << "variant=" << static_cast<int>(variant) << " rle=" << rle
            << " rep=" << static_cast<int>(rep);
      }
    }
  }
}

}  // namespace
}  // namespace avqdb
