// Golden test for the Prometheus text exposition: the exact byte output
// for a small registry is pinned, because scrapers parse it verbatim.

#include "src/obs/prometheus.h"

#include <string>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"

namespace avqdb::obs {
namespace {

TEST(Prometheus, GoldenExposition) {
  MetricsRegistry registry;
  registry.GetCounter("queries.total")->Add(42);
  registry.GetGauge("pool.resident_bytes")->Set(-7);
  Histogram* hist = registry.GetHistogram("request.latency_us");
  hist->Record(0);   // zero bucket, le = 0
  hist->Record(3);   // bucket [2, 3], le = 3
  hist->Record(3);
  hist->Record(10);  // bucket [8, 15], le = 15

  // p50: rank 2 of 4 lands in [2, 3] -> 2 + 0.25 * 1 = 2.25.
  // p95/p99: rank 4 lands in [8, 15] -> 8 + 0.5 * 7 = 11.5.
  const std::string kGolden =
      "# TYPE avqdb_queries_total counter\n"
      "avqdb_queries_total 42\n"
      "# TYPE avqdb_pool_resident_bytes gauge\n"
      "avqdb_pool_resident_bytes -7\n"
      "# TYPE avqdb_request_latency_us histogram\n"
      "avqdb_request_latency_us_bucket{le=\"0\"} 1\n"
      "avqdb_request_latency_us_bucket{le=\"3\"} 3\n"
      "avqdb_request_latency_us_bucket{le=\"15\"} 4\n"
      "avqdb_request_latency_us_bucket{le=\"+Inf\"} 4\n"
      "avqdb_request_latency_us_sum 16\n"
      "avqdb_request_latency_us_count 4\n"
      "# TYPE avqdb_request_latency_us_p50 gauge\n"
      "avqdb_request_latency_us_p50 2.25\n"
      "# TYPE avqdb_request_latency_us_p95 gauge\n"
      "avqdb_request_latency_us_p95 11.5\n"
      "# TYPE avqdb_request_latency_us_p99 gauge\n"
      "avqdb_request_latency_us_p99 11.5\n";

  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), kGolden);
}

TEST(Prometheus, EmptyHistogramStillExposesSeries) {
  MetricsRegistry registry;
  registry.GetHistogram("idle.hist");
  const std::string kGolden =
      "# TYPE avqdb_idle_hist histogram\n"
      "avqdb_idle_hist_bucket{le=\"+Inf\"} 0\n"
      "avqdb_idle_hist_sum 0\n"
      "avqdb_idle_hist_count 0\n"
      "# TYPE avqdb_idle_hist_p50 gauge\n"
      "avqdb_idle_hist_p50 0\n"
      "# TYPE avqdb_idle_hist_p95 gauge\n"
      "avqdb_idle_hist_p95 0\n"
      "# TYPE avqdb_idle_hist_p99 gauge\n"
      "avqdb_idle_hist_p99 0\n";
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), kGolden);
}

TEST(Prometheus, EmptyRegistryIsEmptyOutput) {
  MetricsRegistry registry;
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), "");
}

TEST(Prometheus, DotsBecomeUnderscoresEverywhere) {
  MetricsRegistry registry;
  registry.GetCounter("a.b.c.d")->Increment();
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("avqdb_a_b_c_d 1"), std::string::npos);
  EXPECT_EQ(text.find("a.b"), std::string::npos);
}

}  // namespace
}  // namespace avqdb::obs
