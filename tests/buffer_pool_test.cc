#include "src/storage/buffer_pool.h"

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(BufferPool, MissThenHit) {
  BufferPool pool(2);
  EXPECT_EQ(pool.Get(1), std::nullopt);
  EXPECT_EQ(pool.misses(), 1u);
  pool.Put(1, "one");
  std::optional<std::string> hit = pool.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Put(1, "one");
  pool.Put(2, "two");
  ASSERT_TRUE(pool.Get(1).has_value());  // 1 becomes most recent
  pool.Put(3, "three");                  // evicts 2
  EXPECT_EQ(pool.Get(2), std::nullopt);
  EXPECT_TRUE(pool.Get(1).has_value());
  EXPECT_TRUE(pool.Get(3).has_value());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, PutOverwritesAndRefreshes) {
  BufferPool pool(2);
  pool.Put(1, "one");
  pool.Put(2, "two");
  pool.Put(1, "uno");  // overwrite refreshes recency
  pool.Put(3, "three");
  EXPECT_EQ(pool.Get(2), std::nullopt);  // 2 was LRU
  std::optional<std::string> v = pool.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "uno");
}

TEST(BufferPool, EraseAndClear) {
  BufferPool pool(4);
  pool.Put(1, "a");
  pool.Put(2, "b");
  pool.Erase(1);
  EXPECT_EQ(pool.Get(1), std::nullopt);
  EXPECT_TRUE(pool.Get(2).has_value());
  pool.Erase(99);  // absent: no-op
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.Get(2), std::nullopt);
}

TEST(BufferPool, ZeroCapacityCachesNothing) {
  BufferPool pool(0);
  pool.Put(1, "one");
  EXPECT_EQ(pool.Get(1), std::nullopt);
  EXPECT_EQ(pool.size(), 0u);
}

// Hammers one small pool from several threads; run under TSan
// (tools/run_sanitized_tests.sh) this proves the locking, and under any
// build every returned value must match what some thread Put for that id.
TEST(BufferPool, ConcurrentMixedOperations) {
  BufferPool pool(8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr BlockId kBlocks = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const BlockId id = static_cast<BlockId>((t * 7 + i) % kBlocks);
        switch (i % 4) {
          case 0:
          case 1: {
            std::optional<std::string> got = pool.Get(id);
            if (got.has_value()) {
              // Every writer stores "block-<id>"; torn values would differ.
              EXPECT_EQ(*got, "block-" + std::to_string(id));
            }
            break;
          }
          case 2:
            pool.Put(id, "block-" + std::to_string(id));
            break;
          default:
            if (i % 32 == 3) {
              pool.Erase(id);
            } else {
              pool.Put(id, "block-" + std::to_string(id));
            }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(pool.size(), 8u);
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread / 2);
}

}  // namespace
}  // namespace avqdb
