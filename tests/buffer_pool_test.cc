#include "src/storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(BufferPool, MissThenHit) {
  BufferPool pool(2);
  EXPECT_EQ(pool.Get(1), nullptr);
  EXPECT_EQ(pool.misses(), 1u);
  pool.Put(1, "one");
  const std::string* hit = pool.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Put(1, "one");
  pool.Put(2, "two");
  ASSERT_NE(pool.Get(1), nullptr);  // 1 becomes most recent
  pool.Put(3, "three");             // evicts 2
  EXPECT_EQ(pool.Get(2), nullptr);
  EXPECT_NE(pool.Get(1), nullptr);
  EXPECT_NE(pool.Get(3), nullptr);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, PutOverwritesAndRefreshes) {
  BufferPool pool(2);
  pool.Put(1, "one");
  pool.Put(2, "two");
  pool.Put(1, "uno");  // overwrite refreshes recency
  pool.Put(3, "three");
  EXPECT_EQ(pool.Get(2), nullptr);  // 2 was LRU
  const std::string* v = pool.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "uno");
}

TEST(BufferPool, EraseAndClear) {
  BufferPool pool(4);
  pool.Put(1, "a");
  pool.Put(2, "b");
  pool.Erase(1);
  EXPECT_EQ(pool.Get(1), nullptr);
  EXPECT_NE(pool.Get(2), nullptr);
  pool.Erase(99);  // absent: no-op
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.Get(2), nullptr);
}

TEST(BufferPool, ZeroCapacityCachesNothing) {
  BufferPool pool(0);
  pool.Put(1, "one");
  EXPECT_EQ(pool.Get(1), nullptr);
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace avqdb
