#include "src/common/slice.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(Slice, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Slice, ViewsString) {
  std::string owner = "abcdef";
  Slice s(owner);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s.ToString(), "abcdef");
  EXPECT_EQ(s.ToStringView(), "abcdef");
}

TEST(Slice, RemovePrefix) {
  std::string owner = "abcdef";
  Slice s(owner);
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.RemovePrefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(Slice, Subslice) {
  std::string owner = "abcdef";
  Slice s(owner);
  EXPECT_EQ(s.Subslice(1, 3).ToString(), "bcd");
  EXPECT_EQ(s.Subslice(0, 0).size(), 0u);
}

TEST(Slice, CompareIsLexicographic) {
  std::string a = "abc", b = "abd", c = "ab", d = "abc";
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_GT(Slice(b).Compare(Slice(a)), 0);
  EXPECT_GT(Slice(a).Compare(Slice(c)), 0);  // prefix sorts first
  EXPECT_EQ(Slice(a).Compare(Slice(d)), 0);
  EXPECT_TRUE(Slice(a) == Slice(d));
  EXPECT_TRUE(Slice(a) != Slice(b));
  EXPECT_TRUE(Slice(a) < Slice(b));
}

TEST(Slice, StartsWith) {
  std::string owner = "abcdef";
  std::string ab = "ab", abd = "abd", empty;
  Slice s(owner);
  EXPECT_TRUE(s.StartsWith(Slice(ab)));
  EXPECT_TRUE(s.StartsWith(Slice(empty)));
  EXPECT_FALSE(s.StartsWith(Slice(abd)));
  EXPECT_FALSE(Slice(ab).StartsWith(s));
}

TEST(Slice, BinaryContentWithNulBytes) {
  const uint8_t bytes[] = {0x00, 0x01, 0x00, 0xff};
  Slice s(bytes, sizeof(bytes));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[2], 0u);
  EXPECT_EQ(s.ToString().size(), 4u);
}

}  // namespace
}  // namespace avqdb
