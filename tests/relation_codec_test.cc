#include "src/avq/relation_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/generator.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(RelationCodec, EncodeDecodeRoundTrip) {
  auto schema = testing::PaperShapeSchema();
  RelationCodec codec(schema, CodecOptions{});
  auto tuples = testing::RandomTuples(*schema, 5000, 11);
  auto encoded = codec.Encode(tuples);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_GT(encoded->blocks.size(), 0u);
  for (const auto& block : encoded->blocks) {
    EXPECT_EQ(block.size(), codec.options().block_size);
  }
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  // Decoded tuples come back φ-sorted; compare against the sorted input.
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(decoded.value(), tuples);
}

TEST(RelationCodec, EmptyRelation) {
  auto schema = testing::PaperShapeSchema();
  RelationCodec codec(schema, CodecOptions{});
  auto encoded = codec.Encode({});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->blocks.size(), 0u);
  EXPECT_EQ(encoded->stats.coded_blocks, 0u);
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(RelationCodec, RejectsInvalidTuples) {
  auto schema = testing::PaperShapeSchema();
  RelationCodec codec(schema, CodecOptions{});
  EXPECT_TRUE(
      codec.Encode({{9, 0, 0, 0, 0}}).status().IsOutOfRange());
}

TEST(RelationCodec, StatsAccounting) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 1024;
  RelationCodec codec(schema, options);
  auto tuples = testing::RandomTuples(*schema, 3000, 21);
  auto encoded = codec.Encode(tuples);
  ASSERT_TRUE(encoded.ok());
  const CompressionStats& stats = encoded->stats;
  EXPECT_EQ(stats.tuple_count, 3000u);
  EXPECT_EQ(stats.tuple_width, 5u);
  EXPECT_EQ(stats.uncoded_bytes, 15000u);
  EXPECT_EQ(stats.coded_blocks, encoded->blocks.size());
  EXPECT_EQ(stats.uncoded_blocks, codec.UncodedBlockCount(3000));
  // 1024-byte blocks hold (1024-16)/5 = 201 raw tuples -> 15 blocks.
  EXPECT_EQ(stats.uncoded_blocks, 15u);
  EXPECT_GT(stats.coded_payload_bytes, 0u);
  EXPECT_LT(stats.coded_payload_bytes, stats.uncoded_bytes);
  EXPECT_GT(stats.BlockReductionPercent(), 0.0);
  EXPECT_GT(stats.CompressionRatio(), 1.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(RelationCodec, CompressesPaperEmployeeRelation) {
  auto schema = PaperEmployeeSchema();
  CodecOptions options;
  options.block_size = 64;  // small blocks so 50 tuples span several
  RelationCodec codec(schema, options);
  auto encoded = codec.Encode(PaperEmployeeTuples());
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 50u);
  // Fewer coded blocks than uncoded.
  EXPECT_LT(encoded->stats.coded_blocks, encoded->stats.uncoded_blocks);
}

TEST(RelationCodec, EncodeRowsAppliesDomainMapping) {
  auto schema = PaperEmployeeSchema();
  RelationCodec codec(schema, CodecOptions{});
  auto encoded = codec.EncodeRows(PaperEmployeeRows());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->stats.tuple_count, 50u);
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  auto expected = PaperEmployeeTuples();
  std::sort(expected.begin(), expected.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(decoded.value(), expected);
}

TEST(RelationCodec, EncodeSortedRejectsNothingButMatchesEncode) {
  auto schema = testing::PaperShapeSchema();
  RelationCodec codec(schema, CodecOptions{});
  auto tuples = testing::RandomTuples(*schema, 1000, 31);
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  auto a = codec.EncodeSorted(tuples);
  auto b = codec.Encode(tuples);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->blocks, b->blocks);
}

TEST(RelationCodec, GeneratedWorkloadsRoundTripAllTests) {
  for (int test = 1; test <= 4; ++test) {
    auto relation =
        GenerateRelation(PaperTestSpec(test, 2000, /*seed=*/1000 + test));
    ASSERT_TRUE(relation.ok());
    RelationCodec codec(relation->schema, CodecOptions{});
    auto encoded = codec.Encode(relation->tuples);
    ASSERT_TRUE(encoded.ok()) << "test " << test;
    auto decoded = codec.DecodeAll(encoded->blocks);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->size(), relation->tuples.size());
    EXPECT_GT(encoded->stats.BlockReductionPercent(), 0.0) << "test " << test;
  }
}

}  // namespace
}  // namespace avqdb
