// Property tests for the whole-relation codec: seeded randomized
// round-trips over random schemas, random bags (duplicates included),
// and random codec options — including the parallelism knob — checking
//   decode(encode(T)) == sort_phi(T)
// and that CompressionStats' byte accounting matches the bytes actually
// present in the block images.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/avq/block_format.h"
#include "src/avq/relation_codec.h"
#include "src/common/coding.h"
#include "src/common/random.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

using ::avqdb::testing::IntSchema;
using ::avqdb::testing::RandomTuple;

// Cardinality palette: degenerate single-value domains, the paper's
// small categorical sizes, byte-boundary-straddling sizes, and a
// 2^32-scale domain (4-byte digits).
const uint64_t kCardinalities[] = {
    1, 2, 7, 8, 255, 256, 257, 4096, 65536, 1u << 20, (1ull << 32)};

SchemaPtr RandomSchema(Random& rng) {
  const size_t num_attrs = 1 + rng.Uniform(8);
  std::vector<uint64_t> cards;
  for (size_t i = 0; i < num_attrs; ++i) {
    cards.push_back(
        kCardinalities[rng.Uniform(std::size(kCardinalities))]);
  }
  return IntSchema(cards);
}

CodecOptions RandomOptions(Random& rng) {
  CodecOptions options;
  options.variant = rng.Bernoulli(0.5) ? CodecVariant::kChainDelta
                                       : CodecVariant::kRepresentativeDelta;
  options.representative = rng.Bernoulli(0.5)
                               ? RepresentativeChoice::kMiddle
                               : RepresentativeChoice::kFirst;
  options.run_length_zeros = rng.Bernoulli(0.5);
  const size_t block_sizes[] = {512, 1024, 4096};
  options.block_size = block_sizes[rng.Uniform(3)];
  const size_t parallelisms[] = {1, 2, 3, 0};
  options.parallelism = parallelisms[rng.Uniform(4)];
  return options;
}

// A random bag: mostly fresh uniform tuples, but with a duplicate-heavy
// tail that repeats earlier picks (tests bag semantics and zero deltas).
std::vector<OrdinalTuple> RandomBag(const Schema& schema, size_t count,
                                    Random& rng) {
  std::vector<OrdinalTuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!tuples.empty() && rng.Bernoulli(0.25)) {
      tuples.push_back(tuples[rng.Uniform(tuples.size())]);
    } else {
      tuples.push_back(RandomTuple(schema, rng));
    }
  }
  return tuples;
}

std::vector<OrdinalTuple> SortedByPhi(std::vector<OrdinalTuple> tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return tuples;
}

void CheckByteAccounting(const RelationCodec& codec, const Schema& schema,
                         const EncodedRelation& encoded, size_t n) {
  const CompressionStats& stats = encoded.stats;
  EXPECT_EQ(stats.tuple_count, n);
  EXPECT_EQ(stats.tuple_width, schema.tuple_width());
  EXPECT_EQ(stats.block_size, codec.options().block_size);
  EXPECT_EQ(stats.coded_blocks, encoded.blocks.size());
  EXPECT_EQ(stats.uncoded_bytes,
            static_cast<uint64_t>(n) * schema.tuple_width());
  EXPECT_EQ(stats.uncoded_blocks, codec.UncodedBlockCount(n));
  // coded_payload_bytes must equal the header-declared payload sizes in
  // the actual block images, plus one header per block.
  uint64_t from_blocks = 0;
  for (const std::string& block : encoded.blocks) {
    ASSERT_EQ(block.size(), codec.options().block_size);
    from_blocks += kBlockHeaderSize +
                   DecodeFixed32(
                       reinterpret_cast<const uint8_t*>(block.data()) + 8);
  }
  EXPECT_EQ(stats.coded_payload_bytes, from_blocks);
}

TEST(RelationCodecPropertyTest, RandomRoundTrips) {
  Random rng(20260807);
  for (int iteration = 0; iteration < 40; ++iteration) {
    SchemaPtr schema = RandomSchema(rng);
    CodecOptions options = RandomOptions(rng);
    if (!options.Validate(schema->tuple_width()).ok()) {
      options.block_size = 4096;  // wide schema + tiny block: widen
    }
    const size_t n = rng.Uniform(2000);
    std::vector<OrdinalTuple> bag = RandomBag(*schema, n, rng);
    SCOPED_TRACE("iteration=" + std::to_string(iteration) +
                 " attrs=" + std::to_string(schema->num_attributes()) +
                 " n=" + std::to_string(n) +
                 " block_size=" + std::to_string(options.block_size) +
                 " parallelism=" + std::to_string(options.parallelism));

    RelationCodec codec(schema, options);
    auto encoded = codec.Encode(bag);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    CheckByteAccounting(codec, *schema, *encoded, n);

    auto decoded = codec.DecodeAll(encoded->blocks);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, SortedByPhi(bag));
  }
}

TEST(RelationCodecPropertyTest, SingleValueDomainsOnly) {
  // |A_i| = 1 for every attribute: the relation holds one distinct tuple,
  // every difference is zero, and φ is constant.
  SchemaPtr schema = IntSchema({1, 1, 1});
  CodecOptions options;
  options.block_size = 512;
  options.parallelism = 3;
  RelationCodec codec(schema, options);
  std::vector<OrdinalTuple> bag(500, OrdinalTuple{0, 0, 0});
  auto encoded = codec.Encode(bag);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  CheckByteAccounting(codec, *schema, *encoded, bag.size());
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bag);
}

TEST(RelationCodecPropertyTest, HugeDomainSparseRelation) {
  // 2^32-scale domains: tuples are far apart, so deltas stay wide and
  // blocks stay nearly full-width; the round trip must still be exact.
  Random rng(99);
  SchemaPtr schema = IntSchema({(1ull << 32), (1ull << 32)});
  CodecOptions options;
  options.parallelism = 2;
  RelationCodec codec(schema, options);
  std::vector<OrdinalTuple> bag;
  for (int i = 0; i < 3000; ++i) bag.push_back(RandomTuple(*schema, rng));
  auto encoded = codec.Encode(bag);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  CheckByteAccounting(codec, *schema, *encoded, bag.size());
  auto decoded = codec.DecodeAll(encoded->blocks);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, SortedByPhi(bag));
}

TEST(RelationCodecPropertyTest, OutOfDomainTupleRejectedAtSameIndex) {
  // Validation errors must be deterministic across parallelism: the
  // lowest offending index is the one reported.
  SchemaPtr schema = IntSchema({8, 8});
  std::vector<OrdinalTuple> bag(100, OrdinalTuple{1, 2});
  bag[37] = OrdinalTuple{9, 0};  // out of domain
  bag[80] = OrdinalTuple{9, 9};  // also bad, higher index
  std::string serial_message;
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{7}, size_t{0}}) {
    CodecOptions options;
    options.parallelism = parallelism;
    RelationCodec codec(schema, options);
    auto encoded = codec.Encode(bag);
    ASSERT_FALSE(encoded.ok()) << "parallelism=" << parallelism;
    if (parallelism == 1) {
      serial_message = encoded.status().ToString();
    } else {
      EXPECT_EQ(encoded.status().ToString(), serial_message)
          << "parallelism=" << parallelism;
    }
  }
}

TEST(RelationCodecPropertyTest, EncodeSortedRejectsUnsortedInParallel) {
  SchemaPtr schema = IntSchema({64, 64});
  std::vector<OrdinalTuple> bag = {{5, 0}, {1, 0}, {3, 0}};
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{0}}) {
    CodecOptions options;
    options.parallelism = parallelism;
    RelationCodec codec(schema, options);
    auto encoded = codec.EncodeSorted(bag);
    EXPECT_FALSE(encoded.ok()) << "parallelism=" << parallelism;
  }
}

}  // namespace
}  // namespace avqdb
