#include "src/schema/schema.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/schema/domain.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(Schema, PaperShapeGeometry) {
  auto schema = testing::PaperShapeSchema();
  EXPECT_EQ(schema->num_attributes(), 5u);
  EXPECT_EQ(schema->radices(),
            (std::vector<uint64_t>{8, 16, 64, 64, 64}));
  EXPECT_EQ(schema->digit_widths(),
            (std::vector<uint8_t>{1, 1, 1, 1, 1}));
  EXPECT_EQ(schema->tuple_width(), 5u);
  ASSERT_TRUE(schema->space_size_fits_u128());
  // ||R|| = 8 * 16 * 64^3 = 33,554,432.
  EXPECT_EQ(static_cast<uint64_t>(schema->space_size_u128()), 33554432u);
  EXPECT_NEAR(schema->space_size_log2(), 25.0, 1e-9);
}

TEST(Schema, DigitWidthsScaleWithCardinality) {
  auto schema = testing::IntSchema({2, 256, 257, 65536, 65537, 1u << 24});
  EXPECT_EQ(schema->digit_widths(),
            (std::vector<uint8_t>{1, 1, 2, 2, 3, 3}));
  EXPECT_EQ(schema->tuple_width(), 12u);
}

TEST(Schema, RejectsEmptyAttributeList) {
  EXPECT_TRUE(Schema::Create({}).status().IsInvalidArgument());
}

TEST(Schema, RejectsDuplicateNames) {
  std::vector<Attribute> attrs = {
      {"a", std::make_shared<IntegerRangeDomain>(0, 1)},
      {"a", std::make_shared<IntegerRangeDomain>(0, 1)},
  };
  EXPECT_TRUE(Schema::Create(std::move(attrs)).status().IsInvalidArgument());
}

TEST(Schema, RejectsMissingDomain) {
  std::vector<Attribute> attrs = {{"a", nullptr}};
  EXPECT_TRUE(Schema::Create(std::move(attrs)).status().IsInvalidArgument());
}

TEST(Schema, RejectsOversizedTuples) {
  // 256 one-byte attributes exceed the 255-byte tuple-width cap.
  std::vector<uint64_t> cards(256, 16);
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < cards.size(); ++i) {
    attrs.push_back({"a" + std::to_string(i),
                     std::make_shared<IntegerRangeDomain>(0, 15)});
  }
  EXPECT_TRUE(Schema::Create(std::move(attrs)).status().IsInvalidArgument());
}

TEST(Schema, AttributeIndexLookup) {
  auto schema = testing::PaperShapeSchema();
  EXPECT_EQ(schema->AttributeIndex("a0").value(), 0u);
  EXPECT_EQ(schema->AttributeIndex("a4").value(), 4u);
  EXPECT_TRUE(schema->AttributeIndex("missing").status().IsNotFound());
}

TEST(Schema, SpaceSizeOverflowDetected) {
  // 20 attributes of cardinality 2^63: |R| = 2^1260 >> 2^128.
  std::vector<Attribute> attrs;
  for (int i = 0; i < 20; ++i) {
    attrs.push_back(
        {"a" + std::to_string(i),
         std::make_shared<IntegerRangeDomain>(
             0, std::numeric_limits<int64_t>::max() - 1)});
  }
  auto schema = Schema::Create(std::move(attrs));
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(schema.value()->space_size_fits_u128());
  EXPECT_NEAR(schema.value()->space_size_log2(), 20 * 63.0, 0.1);
}

TEST(Schema, ToStringMentionsAttributes) {
  auto schema = testing::IntSchema({8, 16});
  const std::string s = schema->ToString();
  EXPECT_NE(s.find("a0"), std::string::npos);
  EXPECT_NE(s.find("a1"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
}

}  // namespace
}  // namespace avqdb
