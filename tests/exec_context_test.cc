// ExecContext unit coverage: deadline/cancellation semantics of Check(),
// hierarchical MemoryBudget accounting (charges, rollback on parent
// denial, runtime limit changes, destructor leak release), BudgetLease
// slab batching, and ExecContextScope nesting.

#include "src/db/exec_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace avqdb {
namespace {

using std::chrono::milliseconds;

TEST(ExecContextTest, DefaultContextIsUngoverned) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_EQ(ctx.memory_budget(), nullptr);
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, ExpiredDeadlineFailsCheck) {
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  Status status = ctx.Check();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  ctx.ClearDeadline();
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, FutureDeadlinePassesCheck) {
  ExecContext ctx;
  ctx.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.DeadlinePassed());
}

TEST(ExecContextTest, CancellationFailsCheckAndWinsOverDeadline) {
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  ctx.Cancel();
  Status status = ctx.Check();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
}

TEST(ExecContextTest, CopiesShareTheCancellationToken) {
  ExecContext original;
  ExecContext copy = original;
  original.Cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.Check().IsCancelled());
}

TEST(ExecContextTest, TokenOutlivesTheContext) {
  std::shared_ptr<CancellationToken> token;
  {
    ExecContext ctx;
    token = ctx.cancellation_token();
  }
  token->Cancel();  // must not crash; the token is independently owned
  EXPECT_TRUE(token->cancelled());
}

TEST(ExecContextTest, CancelFromAnotherThreadIsObserved) {
  ExecContext ctx;
  std::thread canceller([token = ctx.cancellation_token()] {
    token->Cancel();
  });
  canceller.join();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(MemoryBudgetTest, ChargesAndReleases) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_FALSE(budget.TryCharge(500));
  EXPECT_EQ(budget.used(), 600u);  // denied charge changed nothing
  EXPECT_EQ(budget.denials(), 1u);
  EXPECT_TRUE(budget.TryCharge(400));
  EXPECT_EQ(budget.used(), 1000u);
  budget.Release(1000);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 1000u);
}

TEST(MemoryBudgetTest, UnlimitedByDefault) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.TryCharge(UINT64_MAX / 2));
  EXPECT_TRUE(budget.CouldCharge(UINT64_MAX / 2));
}

TEST(MemoryBudgetTest, ChildChargesParentTransitively) {
  MemoryBudget parent(1000);
  MemoryBudget child(1000, &parent);
  EXPECT_TRUE(child.TryCharge(700));
  EXPECT_EQ(parent.used(), 700u);

  // A sibling competes for the parent allowance.
  MemoryBudget sibling(1000, &parent);
  EXPECT_FALSE(sibling.TryCharge(400));
  EXPECT_EQ(sibling.used(), 0u);  // rolled back after the parent denied
  EXPECT_EQ(sibling.denials(), 1u);
  EXPECT_TRUE(sibling.TryCharge(300));
  EXPECT_EQ(parent.used(), 1000u);
}

TEST(MemoryBudgetTest, DestructorReleasesLeaksFromParent) {
  MemoryBudget parent(1000);
  {
    MemoryBudget child(1000, &parent);
    EXPECT_TRUE(child.TryCharge(800));
    // Child dies still holding 800 bytes.
  }
  EXPECT_EQ(parent.used(), 0u);
  EXPECT_TRUE(parent.TryCharge(1000));
}

TEST(MemoryBudgetTest, LoweringTheLimitBelowUsageDeniesWithoutUnderflow) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(900));
  budget.set_limit(100);  // now used > limit
  EXPECT_FALSE(budget.TryCharge(1));
  EXPECT_FALSE(budget.CouldCharge(1));
  budget.Release(850);
  EXPECT_TRUE(budget.TryCharge(1));
}

TEST(MemoryBudgetTest, CouldChargeIsAdvisoryAndChangesNothing) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.CouldCharge(100));
  EXPECT_FALSE(budget.CouldCharge(101));
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.denials(), 0u);  // advisory probes are not denials
}

TEST(BudgetLeaseTest, NullBudgetAcceptsEverything) {
  BudgetLease lease(nullptr);
  EXPECT_TRUE(lease.Charge(UINT64_MAX / 2));
  EXPECT_TRUE(lease.Charge(UINT64_MAX / 2));
}

TEST(BudgetLeaseTest, SlabBatchingChargesCoarselyAndReleasesOnDestruction) {
  MemoryBudget budget(1 << 20);
  {
    BudgetLease lease(&budget);
    EXPECT_TRUE(lease.Charge(10));
    // One slab covers many small charges: the budget sees slab
    // granularity, the lease tracks the exact bytes.
    EXPECT_GE(budget.used(), 10u);
    const uint64_t after_first = budget.used();
    EXPECT_TRUE(lease.Charge(10));
    EXPECT_EQ(budget.used(), after_first);
    EXPECT_EQ(lease.charged(), 20u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetLeaseTest, DenialLeavesAcceptedChargesInPlace) {
  MemoryBudget budget(100);  // smaller than one slab
  BudgetLease lease(&budget);
  EXPECT_FALSE(lease.Charge(10));  // the covering slab exceeds the limit
  EXPECT_EQ(lease.charged(), 0u);
  EXPECT_GE(budget.denials(), 1u);
}

TEST(BudgetLeaseTest, ReleaseAllReturnsTheSlabs) {
  MemoryBudget budget(1 << 20);
  BudgetLease lease(&budget);
  EXPECT_TRUE(lease.Charge(1000));
  EXPECT_GT(budget.used(), 0u);
  lease.ReleaseAll();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(lease.charged(), 0u);
  EXPECT_TRUE(lease.Charge(1000));  // the lease is reusable
}

TEST(ExecContextScopeTest, InstallsAndRestores) {
  EXPECT_EQ(ExecContext::Current(), nullptr);
  ExecContext outer;
  {
    ExecContextScope outer_scope(&outer);
    EXPECT_EQ(ExecContext::Current(), &outer);
    ExecContext inner;
    {
      ExecContextScope inner_scope(&inner);
      EXPECT_EQ(ExecContext::Current(), &inner);
    }
    EXPECT_EQ(ExecContext::Current(), &outer);
  }
  EXPECT_EQ(ExecContext::Current(), nullptr);
}

TEST(ExecContextScopeTest, NullInstallKeepsTheEnclosingContext) {
  ExecContext outer;
  ExecContextScope outer_scope(&outer);
  {
    // A nested ungoverned call (ctx == nullptr) must not mask the
    // governed caller above it.
    ExecContextScope null_scope(nullptr);
    EXPECT_EQ(ExecContext::Current(), &outer);
  }
  EXPECT_EQ(ExecContext::Current(), &outer);
}

}  // namespace
}  // namespace avqdb
