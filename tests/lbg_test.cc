#include "src/vq/lbg.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(Lbg, SquaredErrorMatchesEq21) {
  EXPECT_DOUBLE_EQ(SquaredError({1, 2, 3}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredError({0, 0}, {3.0, 4.0}), 25.0);
}

TEST(Lbg, RejectsBadInput) {
  EXPECT_TRUE(
      TrainLbgCodebook({}, LbgOptions{}).status().IsInvalidArgument());
  LbgOptions zero;
  zero.codebook_size = 0;
  EXPECT_TRUE(
      TrainLbgCodebook({{1, 2}}, zero).status().IsInvalidArgument());
  EXPECT_TRUE(TrainLbgCodebook({{1, 2}, {1, 2, 3}}, LbgOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(Lbg, SingleCodewordIsCentroid) {
  LbgOptions options;
  options.codebook_size = 1;
  auto result = TrainLbgCodebook({{0, 0}, {2, 0}, {4, 6}}, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->codewords.size(), 1u);
  EXPECT_DOUBLE_EQ(result->codewords[0][0], 2.0);
  EXPECT_DOUBLE_EQ(result->codewords[0][1], 2.0);
  EXPECT_EQ(result->iterations, 0u);  // no split levels run
}

TEST(Lbg, SeparatesObviousClusters) {
  // Two tight clusters around (0,0) and (100,100).
  std::vector<OrdinalTuple> training;
  for (uint64_t i = 0; i < 20; ++i) {
    training.push_back({i % 3, i % 2});
    training.push_back({100 + i % 3, 100 + i % 2});
  }
  LbgOptions options;
  options.codebook_size = 2;
  auto result = TrainLbgCodebook(training, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->codewords.size(), 2u);
  // One codeword near each cluster.
  const double a = result->codewords[0][0];
  const double b = result->codewords[1][0];
  EXPECT_LT(std::min(a, b), 5.0);
  EXPECT_GT(std::max(a, b), 95.0);
  // Distortion far below the single-codeword case (~2500 per axis).
  EXPECT_LT(result->distortion, 10.0);
  EXPECT_GT(result->iterations, 0u);
}

TEST(Lbg, DistortionDecreasesWithCodebookSize) {
  auto schema = testing::IntSchema({64, 64, 64});
  auto tuples = testing::RandomTuples(*schema, 500, 55);
  double previous = 1e18;
  for (size_t k : {1u, 4u, 16u, 64u}) {
    LbgOptions options;
    options.codebook_size = k;
    auto result = TrainLbgCodebook(tuples, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->distortion, previous * 1.0001) << "k=" << k;
    previous = result->distortion;
  }
}

TEST(Lbg, CodebookGrowsToPowerOfTwoAtLeastRequested) {
  auto schema = testing::IntSchema({16, 16});
  auto tuples = testing::RandomTuples(*schema, 200, 77);
  LbgOptions options;
  options.codebook_size = 5;  // not a power of two
  auto result = TrainLbgCodebook(tuples, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->codewords.size(), 5u);
  EXPECT_EQ(result->codewords.size(), 8u);  // splitting doubles: 1,2,4,8
}

TEST(Lbg, ZeroDistortionWhenCodebookCoversPoints) {
  // Four distinct points, codebook of 4: Lloyd should land on them.
  std::vector<OrdinalTuple> training;
  for (int rep = 0; rep < 10; ++rep) {
    training.push_back({0, 0});
    training.push_back({0, 50});
    training.push_back({50, 0});
    training.push_back({50, 50});
  }
  LbgOptions options;
  options.codebook_size = 4;
  options.max_iterations = 200;
  auto result = TrainLbgCodebook(training, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->distortion, 1e-6);
}

}  // namespace
}  // namespace avqdb
