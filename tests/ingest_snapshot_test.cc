// Concurrent mutation-vs-scan property suite for WriteAheadTable
// (DESIGN.md §11): with writers, scanners, and the background applier all
// running, every snapshot read must equal the table state at exactly one
// commit sequence — never a torn read, never a half-applied batch. Run
// under TSan via `tools/run_sanitized_tests.sh ingest`.
//
// Writers partition the key space by attribute 0 so their batches never
// conflict: each writer's ops always validate, and the global history is
// the seq-ordered merge of all writers' logs. After the threads join, the
// suite folds that history into a model and checks every recorded scan
// against the model state at its snapshot sequence.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/db/table.h"
#include "src/db/write_ahead_table.h"
#include "src/db/write_batch.h"
#include "src/storage/block_device.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;
constexpr int kWriters = 4;          // <= domain size of attribute 0
constexpr int kOpsPerWriter = 150;
constexpr int kScanners = 3;

struct CommittedOp {
  uint64_t seq;
  bool is_delete;
  OrdinalTuple tuple;
};

struct RecordedScan {
  uint64_t seq;
  std::vector<OrdinalTuple> tuples;
};

struct TupleLess {
  bool operator()(const OrdinalTuple& a, const OrdinalTuple& b) const {
    return CompareTuples(a, b) < 0;
  }
};
using TupleSet = std::set<OrdinalTuple, TupleLess>;

TEST(IngestSnapshot, EveryScanIsOneCommitSequence) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice table_device(kBlockSize);
  auto table = Table::CreateAvq(schema, &table_device).value();
  MemBlockDevice wal_device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();

  WriteAheadTableOptions options;  // auto_apply: the applier races scans
  options.apply_chunk_batches = 4;
  options.max_unapplied_batches = 32;  // exercise backpressure under load
  auto wat =
      WriteAheadTable::Create(table.get(), &wal_device, uuid, options);
  ASSERT_TRUE(wat.ok()) << wat.status().ToString();

  std::atomic<bool> writers_done{false};
  std::vector<std::vector<CommittedOp>> committed(kWriters);
  std::vector<std::vector<RecordedScan>> scans(kScanners);
  std::atomic<int> write_failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Random rng(0x1000 + static_cast<uint64_t>(w));
      TupleSet mine;  // this writer's partition state
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // 1..3 non-conflicting ops per batch, all in partition w.
        WriteBatch batch;
        std::vector<CommittedOp> staged;
        TupleSet staged_state = mine;
        const int ops = 1 + static_cast<int>(rng.Uniform(3));
        for (int k = 0; k < ops; ++k) {
          OrdinalTuple t = testing::RandomTuple(*schema, rng);
          t[0] = static_cast<uint64_t>(w);
          const bool is_delete = staged_state.contains(t);
          if (is_delete) {
            batch.Delete(t);
            staged_state.erase(t);
          } else {
            batch.Insert(t);
            staged_state.insert(t);
          }
          staged.push_back(CommittedOp{0, is_delete, std::move(t)});
        }
        uint64_t commit_seq = 0;
        Status status =
            (*wat)->Write(std::move(batch), nullptr, &commit_seq);
        if (!status.ok()) {
          ++write_failures;
          continue;
        }
        mine = std::move(staged_state);
        for (CommittedOp& op : staged) {
          op.seq = commit_seq;
          committed[w].push_back(std::move(op));
        }
      }
    });
  }
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      while (true) {
        const bool last_pass = writers_done.load();
        uint64_t snapshot_seq = 0;
        auto scanned = (*wat)->SnapshotScan(nullptr, &snapshot_seq);
        ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
        scans[s].push_back(RecordedScan{snapshot_seq, std::move(*scanned)});
        if (last_pass) break;
        std::this_thread::yield();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // The partitioned key space means no batch ever conflicts.
  EXPECT_EQ(write_failures.load(), 0);

  // Global history: ops keyed by commit sequence. Sequences are unique
  // per batch; within a batch ops stay in emission order.
  std::map<uint64_t, std::vector<CommittedOp>> history;
  for (const auto& log : committed) {
    for (const CommittedOp& op : log) history[op.seq].push_back(op);
  }

  // Check every scan against the folded model at its snapshot sequence.
  // Scans are grouped by seq so the model is folded once, in order.
  std::vector<const RecordedScan*> ordered;
  size_t total_scans = 0;
  for (const auto& log : scans) {
    total_scans += log.size();
    for (const RecordedScan& scan : log) ordered.push_back(&scan);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const RecordedScan* a, const RecordedScan* b) {
              return a->seq < b->seq;
            });
  TupleSet model;
  auto next_op = history.begin();
  size_t checked = 0;
  for (const RecordedScan* scan : ordered) {
    while (next_op != history.end() && next_op->first <= scan->seq) {
      for (const CommittedOp& op : next_op->second) {
        if (op.is_delete) {
          ASSERT_EQ(model.erase(op.tuple), 1u);
        } else {
          ASSERT_TRUE(model.insert(op.tuple).second);
        }
      }
      ++next_op;
    }
    // φ order first: a merge bug shows up as disorder before set drift.
    EXPECT_TRUE(std::is_sorted(scan->tuples.begin(), scan->tuples.end(),
                               TupleLess{}))
        << "scan at seq " << scan->seq << " is not in tuple order";
    const TupleSet observed(scan->tuples.begin(), scan->tuples.end());
    EXPECT_EQ(observed, model)
        << "scan at seq " << scan->seq
        << " does not match the committed state at that sequence "
           "(observed "
        << observed.size() << " tuples, model " << model.size() << ")";
    ++checked;
  }
  EXPECT_EQ(checked, total_scans);
  EXPECT_GT(total_scans, 0u);

  // Final drain: the base table itself converges to the full history.
  ASSERT_TRUE((*wat)->Flush().ok());
  while (next_op != history.end()) {
    for (const CommittedOp& op : next_op->second) {
      if (op.is_delete) {
        ASSERT_EQ(model.erase(op.tuple), 1u);
      } else {
        ASSERT_TRUE(model.insert(op.tuple).second);
      }
    }
    ++next_op;
  }
  auto final_scan = table->ScanAll();
  ASSERT_TRUE(final_scan.ok());
  EXPECT_EQ(TupleSet(final_scan->begin(), final_scan->end()), model);
}

TEST(IngestSnapshot, SnapshotSelectAgreesWithScanUnderLoad) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice table_device(kBlockSize);
  auto table = Table::CreateAvq(schema, &table_device).value();
  MemBlockDevice wal_device(kBlockSize);
  const WalUuid uuid = GenerateWalUuid();
  auto wat = WriteAheadTable::Create(table.get(), &wal_device, uuid,
                                     WriteAheadTableOptions{});
  ASSERT_TRUE(wat.ok());

  ConjunctiveQuery query;
  query.predicates.push_back(RangeQuery{2, 8, 48});

  std::atomic<bool> done{false};
  std::atomic<int> select_mismatches{0};
  std::thread selector([&] {
    // SnapshotSelect and SnapshotScan at the same pinned sequence must
    // agree on the predicate's answer whenever the sequences line up.
    while (!done.load()) {
      uint64_t select_seq = 0;
      auto selected = (*wat)->SnapshotSelect(query, nullptr, nullptr,
                                             &select_seq);
      ASSERT_TRUE(selected.ok()) << selected.status().ToString();
      uint64_t scan_seq = 0;
      auto scanned = (*wat)->SnapshotScan(nullptr, &scan_seq);
      ASSERT_TRUE(scanned.ok());
      if (select_seq != scan_seq) continue;  // a commit slipped between
      TupleSet filtered;
      for (const OrdinalTuple& t : *scanned) {
        if (t[2] >= 8 && t[2] <= 48) filtered.insert(t);
      }
      if (TupleSet(selected->begin(), selected->end()) != filtered) {
        ++select_mismatches;
      }
      std::this_thread::yield();
    }
  });

  Random rng(0x2222);
  TupleSet present;
  for (int i = 0; i < 400; ++i) {
    OrdinalTuple t = testing::RandomTuple(*schema, rng);
    WriteBatch batch;
    if (present.contains(t)) {
      batch.Delete(t);
      present.erase(t);
    } else {
      batch.Insert(t);
      present.insert(t);
    }
    ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
  }
  done.store(true);
  selector.join();
  EXPECT_EQ(select_mismatches.load(), 0);
  ASSERT_TRUE((*wat)->Flush().ok());
}

}  // namespace
}  // namespace avqdb
