#include "src/schema/domain.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(IntegerRangeDomain, EncodeDecode) {
  IntegerRangeDomain d(10, 20);
  EXPECT_EQ(d.cardinality(), 11u);
  EXPECT_EQ(d.Encode(Value(int64_t{10})).value(), 0u);
  EXPECT_EQ(d.Encode(Value(int64_t{20})).value(), 10u);
  EXPECT_EQ(d.Decode(0).value(), Value(int64_t{10}));
  EXPECT_EQ(d.Decode(10).value(), Value(int64_t{20}));
}

TEST(IntegerRangeDomain, NegativeRange) {
  IntegerRangeDomain d(-5, 5);
  EXPECT_EQ(d.cardinality(), 11u);
  EXPECT_EQ(d.Encode(Value(int64_t{-5})).value(), 0u);
  EXPECT_EQ(d.Encode(Value(int64_t{0})).value(), 5u);
  EXPECT_EQ(d.Decode(5).value(), Value(int64_t{0}));
}

TEST(IntegerRangeDomain, RejectsOutOfRange) {
  IntegerRangeDomain d(0, 63);
  EXPECT_TRUE(d.Encode(Value(int64_t{64})).status().IsOutOfRange());
  EXPECT_TRUE(d.Encode(Value(int64_t{-1})).status().IsOutOfRange());
  EXPECT_TRUE(d.Decode(64).status().IsOutOfRange());
}

TEST(IntegerRangeDomain, RejectsWrongKind) {
  IntegerRangeDomain d(0, 63);
  EXPECT_TRUE(d.Encode(Value("5")).status().IsInvalidArgument());
  EXPECT_TRUE(d.Encode(Value()).status().IsInvalidArgument());
}

TEST(IntegerRangeDomain, SingletonDomain) {
  IntegerRangeDomain d(7, 7);
  EXPECT_EQ(d.cardinality(), 1u);
  EXPECT_EQ(d.Encode(Value(int64_t{7})).value(), 0u);
}

TEST(CategoricalDomain, PositionsFollowConstructionOrder) {
  auto d = CategoricalDomain::Create({"red", "green", "blue"}).value();
  EXPECT_EQ(d->cardinality(), 3u);
  EXPECT_EQ(d->Encode(Value("red")).value(), 0u);
  EXPECT_EQ(d->Encode(Value("blue")).value(), 2u);
  EXPECT_EQ(d->Decode(1).value(), Value("green"));
}

TEST(CategoricalDomain, RejectsUnknownValue) {
  auto d = CategoricalDomain::Create({"red"}).value();
  EXPECT_TRUE(d->Encode(Value("mauve")).status().IsNotFound());
  EXPECT_TRUE(d->Encode(Value(int64_t{1})).status().IsInvalidArgument());
  EXPECT_TRUE(d->Decode(1).status().IsOutOfRange());
}

TEST(CategoricalDomain, RejectsEmptyAndDuplicates) {
  EXPECT_TRUE(CategoricalDomain::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(
      CategoricalDomain::Create({"a", "a"}).status().IsInvalidArgument());
}

TEST(StringDictionaryDomain, AssignsOnFirstUse) {
  StringDictionaryDomain d(4);
  EXPECT_EQ(d.cardinality(), 4u);  // fixed radix regardless of fill
  EXPECT_EQ(d.Encode(Value("x")).value(), 0u);
  EXPECT_EQ(d.Encode(Value("y")).value(), 1u);
  EXPECT_EQ(d.Encode(Value("x")).value(), 0u);
  EXPECT_EQ(d.assigned(), 2u);
  EXPECT_EQ(d.Decode(1).value(), Value("y"));
}

TEST(StringDictionaryDomain, FullDictionaryFails) {
  StringDictionaryDomain d(1);
  ASSERT_TRUE(d.Encode(Value("only")).ok());
  EXPECT_TRUE(d.Encode(Value("more")).status().IsResourceExhausted());
}

TEST(StringDictionaryDomain, DecodeUnassignedOrdinal) {
  StringDictionaryDomain d(8);
  ASSERT_TRUE(d.Encode(Value("a")).ok());
  // Within capacity but not yet assigned.
  EXPECT_TRUE(d.Decode(5).status().IsOutOfRange());
  // Beyond capacity.
  EXPECT_TRUE(d.Decode(8).status().IsOutOfRange());
}

}  // namespace
}  // namespace avqdb
