#include "src/common/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace avqdb {
namespace {

TEST(Coding, Fixed16RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xffffu}) {
    std::string buf;
    PutFixed16(&buf, static_cast<uint16_t>(v));
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(DecodeFixed16(reinterpret_cast<const uint8_t*>(buf.data())), v);
  }
}

TEST(Coding, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xffu, 0x12345678u, 0xffffffffu}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(DecodeFixed32(reinterpret_cast<const uint8_t*>(buf.data())), v);
  }
}

TEST(Coding, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0x123456789abcdef0},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    EXPECT_EQ(DecodeFixed64(reinterpret_cast<const uint8_t*>(buf.data())), v);
  }
}

TEST(Coding, FixedIsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(Coding, VarintRoundTrip) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (uint64_t{1} << 32) - 1,
                            uint64_t{1} << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice input(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(Coding, Varint32RejectsOversized) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 33);
  Slice input(buf);
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(&input, &decoded));
}

TEST(Coding, VarintRejectsTruncated) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();
  Slice input(buf);
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(&input, &decoded));
}

TEST(Coding, VarintLengths) {
  EXPECT_EQ(VarintLength(0), 1);
  EXPECT_EQ(VarintLength(127), 1);
  EXPECT_EQ(VarintLength(128), 2);
  EXPECT_EQ(VarintLength(std::numeric_limits<uint64_t>::max()), 10);
}

TEST(Coding, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice(std::string("hello")));
  PutLengthPrefixed(&buf, Slice(std::string("")));
  PutLengthPrefixed(&buf, Slice(std::string("world!")));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&input, &a));
  ASSERT_TRUE(GetLengthPrefixed(&input, &b));
  ASSERT_TRUE(GetLengthPrefixed(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.ToString(), "world!");
  EXPECT_TRUE(input.empty());
}

TEST(Coding, LengthPrefixedRejectsTruncated) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice(std::string("hello")));
  buf.resize(buf.size() - 2);
  Slice input(buf);
  Slice value;
  EXPECT_FALSE(GetLengthPrefixed(&input, &value));
}

TEST(Coding, MultipleVarintsSequential) {
  std::string buf;
  for (uint64_t i = 0; i < 100; ++i) PutVarint64(&buf, i * i * 37);
  Slice input(buf);
  for (uint64_t i = 0; i < 100; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(&input, &v));
    EXPECT_EQ(v, i * i * 37);
  }
  EXPECT_TRUE(input.empty());
}

}  // namespace
}  // namespace avqdb
