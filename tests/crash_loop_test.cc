// Randomized crash-loop property test for the commit protocol.
//
// Each iteration builds a durable table image on an in-memory device,
// reopens it through a FaultInjectionBlockDevice, applies a random batch
// of mutations, then crashes the device at a randomized point — before
// the commit, during a scheduled write fault, mid-Sync with a torn or
// half-flushed buffer, or not at all. The surviving base image must
// always reopen cleanly as EITHER the pre-commit or the post-commit tuple
// set, and whenever Commit() reported success it must be the post-commit
// set. Over >= 1000 iterations this walks the commit protocol through
// every interleaving of flush-prefix, torn-metadata, and lost-buffer
// failure.
//
// Seed rotation: set AVQDB_CRASH_SEED to explore a different schedule
// (tools/crash_loop.sh drives this).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/storage/block_device.h"
#include "src/storage/fault_injection_device.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;
constexpr int kIterations = 1200;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("AVQDB_CRASH_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xa59db10cULL;
}

std::set<OrdinalTuple> ToSet(const std::vector<OrdinalTuple>& tuples) {
  return {tuples.begin(), tuples.end()};
}

TEST(CrashLoop, EveryCrashPointYieldsOldOrNewImage) {
  const uint64_t seed = SeedFromEnv();
  SCOPED_TRACE("AVQDB_CRASH_SEED=" + std::to_string(seed));
  Random rng(seed);
  auto schema = testing::PaperShapeSchema();

  // Baseline table: ~120 tuples over a handful of 512-byte blocks.
  MemBlockDevice source_device(kBlockSize);
  auto source = Table::CreateAvq(schema, &source_device).value();
  {
    auto tuples = testing::RandomTuples(*schema, 160, seed ^ 0x5eedULL);
    std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
    ASSERT_TRUE(
        source
            ->BulkLoad(std::vector<OrdinalTuple>(unique.begin(), unique.end()))
            .ok());
  }
  const std::set<OrdinalTuple> baseline = ToSet(source->ScanAll().value());

  int commits_survived = 0;
  int commits_failed = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));

    // Fresh durable image for this iteration.
    MemBlockDevice base(kBlockSize);
    ASSERT_TRUE(SaveTableToDevice(*source, &base).ok());

    FaultInjectionBlockDevice fault(&base);
    auto opened = OpenTableOnDevice(&fault);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    LoadedTable loaded = std::move(opened).value();

    // Apply 1..5 random mutations (faults are scheduled only afterwards,
    // so the in-memory "new" set is exact).
    std::set<OrdinalTuple> mutated = baseline;
    const int num_mutations = 1 + static_cast<int>(rng.Uniform(5));
    for (int m = 0; m < num_mutations; ++m) {
      OrdinalTuple t = testing::RandomTuple(*schema, rng);
      if (mutated.contains(t)) {
        ASSERT_TRUE(loaded.table->Delete(t).ok());
        mutated.erase(t);
      } else {
        ASSERT_TRUE(loaded.table->Insert(t).ok());
        mutated.insert(t);
      }
    }

    // Pick a crash point.
    bool committed_ok = false;
    const uint64_t mode = rng.Uniform(8);
    if (mode == 0) {
      // Crash before any commit: the batch must vanish entirely.
    } else if (mode <= 2) {
      // Clean commit, then crash: the batch must be durable.
      ASSERT_TRUE(loaded.Commit().ok());
      committed_ok = true;
    } else if (mode == 3) {
      // Permanent failure on the nth device write during commit (n may
      // overshoot the actual write count, in which case the commit just
      // succeeds).
      fault.FailWriteAt(1 + rng.Uniform(4));
      committed_ok = loaded.Commit().ok();
    } else if (mode == 4) {
      // Torn metadata-slot write during commit.
      fault.TearWriteAt(1 + rng.Uniform(2), rng.Uniform(kBlockSize));
      committed_ok = loaded.Commit().ok();
    } else {
      // Power loss mid-Sync: a block-id-order prefix of the buffered
      // blocks lands, optionally tearing the next one. Sync #1 flushes
      // the redirected data blocks, sync #2 flushes the metadata slot.
      const uint64_t nth = 1 + rng.Uniform(2);
      const uint64_t after = rng.Uniform(8);
      const size_t torn = rng.Bernoulli(0.5) ? rng.Uniform(kBlockSize) : 0;
      fault.CrashDuringSync(nth, after, torn);
      committed_ok = loaded.Commit().ok();
    }
    if (committed_ok) {
      ++commits_survived;
    } else {
      ++commits_failed;
    }

    // Power loss: everything unsynced is gone. (No-op if the injected
    // fault already crashed the device.)
    fault.ClearFaults();
    if (!fault.crashed()) fault.Crash();
    loaded.table.reset();  // the dead device outlives the table handle

    // Restart: reopen the raw base image with no fault layer. It must
    // load cleanly and be exactly the old or the new tuple set.
    auto reopened = OpenTableOnDevice(&base);
    ASSERT_TRUE(reopened.ok())
        << "post-crash image unreadable: " << reopened.status().ToString();
    const std::set<OrdinalTuple> survived =
        ToSet(reopened.value().table->ScanAll().value());
    if (committed_ok) {
      EXPECT_EQ(survived, mutated) << "successful commit was not durable";
    } else {
      EXPECT_TRUE(survived == baseline || survived == mutated)
          << "post-crash image is neither the old nor the new tuple set "
             "(old=" << baseline.size() << " new=" << mutated.size()
          << " survived=" << survived.size() << ")";
    }
  }

  // Sanity: the schedule actually exercised both outcomes.
  EXPECT_GT(commits_survived, 0);
  EXPECT_GT(commits_failed, 0);
}

}  // namespace
}  // namespace avqdb
