// Randomized crash-loop property test for the commit protocol.
//
// Each iteration builds a durable table image on an in-memory device,
// reopens it through a FaultInjectionBlockDevice, applies a random batch
// of mutations, then crashes the device at a randomized point — before
// the commit, during a scheduled write fault, mid-Sync with a torn or
// half-flushed buffer, or not at all. The surviving base image must
// always reopen cleanly as EITHER the pre-commit or the post-commit tuple
// set, and whenever Commit() reported success it must be the post-commit
// set. Over >= 1000 iterations this walks the commit protocol through
// every interleaving of flush-prefix, torn-metadata, and lost-buffer
// failure.
//
// Seed rotation: set AVQDB_CRASH_SEED to explore a different schedule
// (tools/crash_loop.sh drives this).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/db/write_ahead_table.h"
#include "src/db/write_batch.h"
#include "src/storage/block_device.h"
#include "src/storage/fault_injection_device.h"
#include "src/storage/wal.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;
constexpr int kIterations = 1200;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("AVQDB_CRASH_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xa59db10cULL;
}

std::set<OrdinalTuple> ToSet(const std::vector<OrdinalTuple>& tuples) {
  return {tuples.begin(), tuples.end()};
}

TEST(CrashLoop, EveryCrashPointYieldsOldOrNewImage) {
  const uint64_t seed = SeedFromEnv();
  SCOPED_TRACE("AVQDB_CRASH_SEED=" + std::to_string(seed));
  Random rng(seed);
  auto schema = testing::PaperShapeSchema();

  // Baseline table: ~120 tuples over a handful of 512-byte blocks.
  MemBlockDevice source_device(kBlockSize);
  auto source = Table::CreateAvq(schema, &source_device).value();
  {
    auto tuples = testing::RandomTuples(*schema, 160, seed ^ 0x5eedULL);
    std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
    ASSERT_TRUE(
        source
            ->BulkLoad(std::vector<OrdinalTuple>(unique.begin(), unique.end()))
            .ok());
  }
  const std::set<OrdinalTuple> baseline = ToSet(source->ScanAll().value());

  int commits_survived = 0;
  int commits_failed = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));

    // Fresh durable image for this iteration.
    MemBlockDevice base(kBlockSize);
    ASSERT_TRUE(SaveTableToDevice(*source, &base).ok());

    FaultInjectionBlockDevice fault(&base);
    auto opened = OpenTableOnDevice(&fault);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    LoadedTable loaded = std::move(opened).value();

    // Apply 1..5 random mutations (faults are scheduled only afterwards,
    // so the in-memory "new" set is exact).
    std::set<OrdinalTuple> mutated = baseline;
    const int num_mutations = 1 + static_cast<int>(rng.Uniform(5));
    for (int m = 0; m < num_mutations; ++m) {
      OrdinalTuple t = testing::RandomTuple(*schema, rng);
      if (mutated.contains(t)) {
        ASSERT_TRUE(loaded.table->Delete(t).ok());
        mutated.erase(t);
      } else {
        ASSERT_TRUE(loaded.table->Insert(t).ok());
        mutated.insert(t);
      }
    }

    // Pick a crash point.
    bool committed_ok = false;
    const uint64_t mode = rng.Uniform(8);
    if (mode == 0) {
      // Crash before any commit: the batch must vanish entirely.
    } else if (mode <= 2) {
      // Clean commit, then crash: the batch must be durable.
      ASSERT_TRUE(loaded.Commit().ok());
      committed_ok = true;
    } else if (mode == 3) {
      // Permanent failure on the nth device write during commit (n may
      // overshoot the actual write count, in which case the commit just
      // succeeds).
      fault.FailWriteAt(1 + rng.Uniform(4));
      committed_ok = loaded.Commit().ok();
    } else if (mode == 4) {
      // Torn metadata-slot write during commit.
      fault.TearWriteAt(1 + rng.Uniform(2), rng.Uniform(kBlockSize));
      committed_ok = loaded.Commit().ok();
    } else {
      // Power loss mid-Sync: a block-id-order prefix of the buffered
      // blocks lands, optionally tearing the next one. Sync #1 flushes
      // the redirected data blocks, sync #2 flushes the metadata slot.
      const uint64_t nth = 1 + rng.Uniform(2);
      const uint64_t after = rng.Uniform(8);
      const size_t torn = rng.Bernoulli(0.5) ? rng.Uniform(kBlockSize) : 0;
      fault.CrashDuringSync(nth, after, torn);
      committed_ok = loaded.Commit().ok();
    }
    if (committed_ok) {
      ++commits_survived;
    } else {
      ++commits_failed;
    }

    // Power loss: everything unsynced is gone. (No-op if the injected
    // fault already crashed the device.)
    fault.ClearFaults();
    if (!fault.crashed()) fault.Crash();
    loaded.table.reset();  // the dead device outlives the table handle

    // Restart: reopen the raw base image with no fault layer. It must
    // load cleanly and be exactly the old or the new tuple set.
    auto reopened = OpenTableOnDevice(&base);
    ASSERT_TRUE(reopened.ok())
        << "post-crash image unreadable: " << reopened.status().ToString();
    const std::set<OrdinalTuple> survived =
        ToSet(reopened.value().table->ScanAll().value());
    if (committed_ok) {
      EXPECT_EQ(survived, mutated) << "successful commit was not durable";
    } else {
      EXPECT_TRUE(survived == baseline || survived == mutated)
          << "post-crash image is neither the old nor the new tuple set "
             "(old=" << baseline.size() << " new=" << mutated.size()
          << " survived=" << survived.size() << ")";
    }
  }

  // Sanity: the schedule actually exercised both outcomes.
  EXPECT_GT(commits_survived, 0);
  EXPECT_GT(commits_failed, 0);
}

// Randomized crash loop for the WAL ingest path: every iteration runs a
// few batches through WriteAheadTable::Write against a fault-injected WAL
// device, crashes at a randomized point (mid-fsync, torn record write,
// write failure, bit-flipped replay read, or cleanly), recovers via
// WriteAheadTable::Recover, and checks the two durability invariants:
//   * zero lost committed writes — every batch Write() acknowledged is in
//     the recovered state;
//   * zero visible uncommitted writes — the recovered state sits exactly
//     at a batch boundary j with acked <= j <= attempted (an in-flight
//     batch may surface whole or not at all, never partially).
TEST(CrashLoop, WalReplayNeverLosesAcknowledgedBatches) {
  const uint64_t seed = SeedFromEnv() ^ 0x77a1ULL;
  SCOPED_TRACE("AVQDB_CRASH_SEED=" + std::to_string(seed));
  Random rng(seed);
  auto schema = testing::PaperShapeSchema();

  MemBlockDevice source_device(kBlockSize);
  auto source = Table::CreateAvq(schema, &source_device).value();
  {
    auto tuples = testing::RandomTuples(*schema, 160, seed ^ 0x5eedULL);
    std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
    ASSERT_TRUE(
        source
            ->BulkLoad(std::vector<OrdinalTuple>(unique.begin(), unique.end()))
            .ok());
  }
  const std::set<OrdinalTuple> baseline = ToSet(source->ScanAll().value());

  WriteAheadTableOptions options;
  options.auto_apply = false;  // the table image stays at the baseline

  int acked_survived = 0;
  int writes_failed = 0;
  int bitflip_iterations = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));

    // Fresh baseline table and fresh fault-injected WAL device. The
    // table device is NOT faulted: with auto_apply off nothing touches
    // it, so recovery always replays into an intact baseline — exactly
    // the Flush-checkpointed state a real restart starts from.
    MemBlockDevice table_base(kBlockSize);
    ASSERT_TRUE(SaveTableToDevice(*source, &table_base).ok());
    auto opened = OpenTableOnDevice(&table_base);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    LoadedTable loaded = std::move(opened).value();

    MemBlockDevice wal_base(kBlockSize);
    FaultInjectionBlockDevice fault(&wal_base);
    const WalUuid uuid = GenerateWalUuid();
    auto wat = WriteAheadTable::Create(loaded.table.get(), &fault, uuid,
                                       options);
    ASSERT_TRUE(wat.ok()) << wat.status().ToString();

    // Schedule the fault AFTER Create (creation itself syncs).
    const uint64_t mode = rng.Uniform(8);
    bool bitflip_recovery = false;
    if (mode == 1) {
      fault.FailWriteAt(1 + rng.Uniform(8));
    } else if (mode == 2) {
      fault.TearWriteAt(1 + rng.Uniform(8), rng.Uniform(kBlockSize));
    } else if (mode <= 4) {
      fault.CrashDuringSync(1 + rng.Uniform(3), rng.Uniform(4),
                            rng.Bernoulli(0.5) ? rng.Uniform(kBlockSize) : 0);
    } else if (mode == 5) {
      bitflip_recovery = true;  // writes run clean; replay reads are hit
      ++bitflip_iterations;
    }
    // mode 0, 6, 7: no fault — the clean-crash baseline.

    // Issue 1..6 batches of 1..3 mutations. models[j] = intended tuple
    // set after j batches; stop at the first failed Write (the write
    // path is poisoned from then on).
    std::vector<std::set<OrdinalTuple>> models = {baseline};
    int acked = 0;
    bool failed = false;
    const int num_batches = 1 + static_cast<int>(rng.Uniform(6));
    for (int b = 0; b < num_batches && !failed; ++b) {
      std::set<OrdinalTuple> next = models.back();
      WriteBatch batch;
      const int num_ops = 1 + static_cast<int>(rng.Uniform(3));
      for (int m = 0; m < num_ops; ++m) {
        OrdinalTuple t = testing::RandomTuple(*schema, rng);
        if (next.contains(t)) {
          batch.Delete(t);
          next.erase(t);
        } else {
          batch.Insert(t);
          next.insert(t);
        }
      }
      models.push_back(std::move(next));
      if ((*wat)->Write(std::move(batch)).ok()) {
        ++acked;
      } else {
        failed = true;
        ++writes_failed;
      }
    }
    const int attempted = acked + (failed ? 1 : 0);

    // Power loss, then tear everything down over the dead device.
    fault.ClearFaults();
    if (!fault.crashed()) fault.Crash();
    wat->reset();
    loaded.table.reset();

    // Restart: reopen the baseline image and replay the surviving WAL.
    auto reopened = OpenTableOnDevice(&table_base);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    FaultInjectionBlockDevice recovery_fault(&wal_base);
    if (bitflip_recovery) {
      recovery_fault.FlipReadBitAt(1 + rng.Uniform(6),
                                   rng.Uniform(kBlockSize),
                                   static_cast<unsigned>(rng.Uniform(8)));
    }
    auto recovered = WriteAheadTable::Recover(
        reopened.value().table.get(), &recovery_fault, uuid, options);
    if (bitflip_recovery && !recovered.ok()) {
      // A flip on the (single) valid header slot read leaves no header
      // at all — that must surface as a clean Corruption, not a bogus
      // replay.
      EXPECT_TRUE(recovered.status().IsCorruption())
          << recovered.status().ToString();
      continue;
    }
    ASSERT_TRUE(recovered.ok())
        << "recovery failed: " << recovered.status().ToString();
    const std::set<OrdinalTuple> survived =
        ToSet((*recovered)->SnapshotScan().value());

    // Which batch boundary did we land on?
    int landed = -1;
    for (int j = 0; j < static_cast<int>(models.size()); ++j) {
      if (survived == models[j]) {
        landed = j;
        break;
      }
    }
    ASSERT_NE(landed, -1)
        << "recovered state is not at a batch boundary (acked=" << acked
        << " attempted=" << attempted << " survived=" << survived.size()
        << " tuples)";
    if (bitflip_recovery) {
      // Silent media corruption truncates replay at some batch boundary;
      // the durability promise needs a readable log, so only atomicity
      // is asserted here.
      EXPECT_LE(landed, attempted);
    } else {
      EXPECT_GE(landed, acked) << "acknowledged batch lost";
      EXPECT_LE(landed, attempted) << "phantom batch appeared";
      if (landed == acked) ++acked_survived;
    }
  }

  // Sanity: the schedule exercised acked-exact recovery, write failures,
  // and bit-flip replays.
  EXPECT_GT(acked_survived, 0);
  EXPECT_GT(writes_failed, 0);
  EXPECT_GT(bitflip_iterations, 0);
}

// A crash inside WriteAheadLog::Truncate must leave either the old log
// (fully replayable — records re-apply idempotently) or the new empty
// generation, never a half-truncated hybrid.
TEST(CrashLoop, WalTruncateCrashLeavesOldOrNewLog) {
  const uint64_t seed = SeedFromEnv() ^ 0x7au;
  SCOPED_TRACE("AVQDB_CRASH_SEED=" + std::to_string(seed));
  Random rng(seed);

  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    MemBlockDevice base(kBlockSize);
    FaultInjectionBlockDevice fault(&base);
    const WalUuid uuid = GenerateWalUuid();
    auto wal = WriteAheadLog::Create(&fault, uuid);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    const int records = 1 + static_cast<int>(rng.Uniform(8));
    for (int r = 1; r <= records; ++r) {
      ASSERT_TRUE(
          (*wal)->Append(static_cast<uint64_t>(r), Slice("payload", 7)).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());

    // Crash inside the truncate's sync (which covers the header flip).
    fault.CrashDuringSync(1, rng.Uniform(3),
                          rng.Bernoulli(0.5) ? rng.Uniform(kBlockSize) : 0);
    const bool truncated =
        (*wal)->Truncate(static_cast<uint64_t>(records)).ok();
    fault.ClearFaults();
    if (!fault.crashed()) fault.Crash();
    wal->reset();

    uint64_t replayed = 0;
    auto reopened = WriteAheadLog::Open(
        &base, uuid,
        [&replayed](uint64_t, Slice) {
          ++replayed;
          return Status::OK();
        });
    ASSERT_TRUE(reopened.ok())
        << "post-crash log unreadable: " << reopened.status().ToString();
    if (truncated) {
      EXPECT_EQ(replayed, 0u) << "records resurfaced after a checkpoint";
    } else {
      // Old or new, never partial: all records or none.
      EXPECT_TRUE(replayed == static_cast<uint64_t>(records) ||
                  replayed == 0u)
          << "half-truncated log: " << replayed << " of " << records;
    }
  }
}

}  // namespace
}  // namespace avqdb
