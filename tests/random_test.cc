#include "src/common/random.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(Random, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Random, UniformStaysInRange) {
  Random rng(7);
  for (uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(Random, UniformOneIsAlwaysZero) {
  Random rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(Random, UniformRangeInclusive) {
  Random rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(13);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Random, BernoulliFrequency) {
  Random rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace avqdb
