#include "src/index/bptree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/storage/block_device.h"

namespace avqdb {
namespace {

std::string Key8(uint64_t v) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; --i) {
    key[static_cast<size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return key;
}

struct TreeFixture {
  // Small blocks force multi-level trees quickly.
  explicit TreeFixture(size_t block_size = 128)
      : device(block_size), pager(&device) {
    tree = BPlusTree::Create(&pager, 8).value();
  }
  MemBlockDevice device;
  Pager pager;
  std::unique_ptr<BPlusTree> tree;
};

TEST(BPlusTree, CreateValidation) {
  MemBlockDevice device(32);
  Pager pager(&device);
  EXPECT_TRUE(BPlusTree::Create(&pager, 0).status().IsInvalidArgument());
  // 32-byte blocks cannot hold two 200-byte keys.
  EXPECT_TRUE(BPlusTree::Create(&pager, 200).status().IsInvalidArgument());
}

TEST(BPlusTree, EmptyTree) {
  TreeFixture f;
  EXPECT_EQ(f.tree->num_entries(), 0u);
  EXPECT_EQ(f.tree->num_nodes(), 1u);
  EXPECT_EQ(f.tree->height(), 1u);
  EXPECT_TRUE(f.tree->Get(Slice(Key8(1))).status().IsNotFound());
  EXPECT_TRUE(f.tree->Floor(Slice(Key8(1))).status().IsNotFound());
  auto iter = f.tree->Begin();
  ASSERT_TRUE(iter.ok());
  EXPECT_FALSE(iter.value().Valid());
}

TEST(BPlusTree, InsertGetSmall) {
  TreeFixture f;
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i * 10)), i).ok());
  }
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.tree->Get(Slice(Key8(i * 10))).value(), i);
  }
  EXPECT_TRUE(f.tree->Get(Slice(Key8(5))).status().IsNotFound());
  EXPECT_EQ(f.tree->num_entries(), 5u);
}

TEST(BPlusTree, DuplicateInsertRejected) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Insert(Slice(Key8(7)), 1).ok());
  EXPECT_TRUE(f.tree->Insert(Slice(Key8(7)), 2).IsAlreadyExists());
  EXPECT_EQ(f.tree->Get(Slice(Key8(7))).value(), 1u);
}

TEST(BPlusTree, KeySizeEnforced) {
  TreeFixture f;
  std::string short_key(4, 'x');
  EXPECT_TRUE(f.tree->Insert(Slice(short_key), 1).IsInvalidArgument());
  EXPECT_TRUE(f.tree->Get(Slice(short_key)).status().IsInvalidArgument());
  EXPECT_TRUE(f.tree->Delete(Slice(short_key)).IsInvalidArgument());
}

TEST(BPlusTree, SplitsGrowTheTree) {
  TreeFixture f;
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i)), i).ok());
  }
  EXPECT_GT(f.tree->height(), 2u);
  EXPECT_GT(f.tree->num_nodes(), 10u);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(f.tree->Get(Slice(Key8(i))).value(), i);
  }
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BPlusTree, ReverseAndRandomInsertionOrders) {
  for (int mode = 0; mode < 2; ++mode) {
    TreeFixture f;
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 400; ++i) keys.push_back(i * 3);
    if (mode == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      Random rng(5);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.Uniform(i)]);
      }
    }
    for (uint64_t k : keys) {
      ASSERT_TRUE(f.tree->Insert(Slice(Key8(k)), k + 1).ok());
    }
    for (uint64_t k : keys) {
      ASSERT_EQ(f.tree->Get(Slice(Key8(k))).value(), k + 1);
    }
    ASSERT_TRUE(f.tree->CheckInvariants().ok());
  }
}

TEST(BPlusTree, IterationIsSorted) {
  TreeFixture f;
  Random rng(6);
  std::map<std::string, uint64_t> expected;
  for (int i = 0; i < 300; ++i) {
    const uint64_t k = rng.Uniform(100000);
    if (expected.contains(Key8(k))) continue;
    expected[Key8(k)] = k;
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(k)), k).ok());
  }
  auto iter = f.tree->Begin();
  ASSERT_TRUE(iter.ok());
  auto it = expected.begin();
  while (iter.value().Valid()) {
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(iter.value().key(), it->first);
    EXPECT_EQ(iter.value().value(), it->second);
    ++it;
    ASSERT_TRUE(iter.value().Next().ok());
  }
  EXPECT_EQ(it, expected.end());
}

TEST(BPlusTree, SeekFindsLowerBound) {
  TreeFixture f;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i * 10)), i).ok());
  }
  auto iter = f.tree->Seek(Slice(Key8(55)));
  ASSERT_TRUE(iter.ok());
  ASSERT_TRUE(iter.value().Valid());
  EXPECT_EQ(iter.value().key(), Key8(60));
  iter = f.tree->Seek(Slice(Key8(60)));
  ASSERT_TRUE(iter.ok());
  EXPECT_EQ(iter.value().key(), Key8(60));
  iter = f.tree->Seek(Slice(Key8(10000)));
  ASSERT_TRUE(iter.ok());
  EXPECT_FALSE(iter.value().Valid());
}

TEST(BPlusTree, FloorSemantics) {
  TreeFixture f;
  for (uint64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i * 10)), i).ok());
  }
  EXPECT_EQ(f.tree->Floor(Slice(Key8(10))).value().key, Key8(10));
  EXPECT_EQ(f.tree->Floor(Slice(Key8(15))).value().key, Key8(10));
  EXPECT_EQ(f.tree->Floor(Slice(Key8(505))).value().key, Key8(500));
  EXPECT_EQ(f.tree->Floor(Slice(Key8(99999))).value().key, Key8(500));
  EXPECT_TRUE(f.tree->Floor(Slice(Key8(9))).status().IsNotFound());
}

TEST(BPlusTree, UpdateRewritesValue) {
  TreeFixture f;
  ASSERT_TRUE(f.tree->Insert(Slice(Key8(3)), 1).ok());
  ASSERT_TRUE(f.tree->Update(Slice(Key8(3)), 99).ok());
  EXPECT_EQ(f.tree->Get(Slice(Key8(3))).value(), 99u);
  EXPECT_TRUE(f.tree->Update(Slice(Key8(4)), 1).IsNotFound());
}

TEST(BPlusTree, DeleteBasics) {
  TreeFixture f;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i)), i).ok());
  }
  ASSERT_TRUE(f.tree->Delete(Slice(Key8(7))).ok());
  EXPECT_TRUE(f.tree->Get(Slice(Key8(7))).status().IsNotFound());
  EXPECT_TRUE(f.tree->Delete(Slice(Key8(7))).IsNotFound());
  EXPECT_EQ(f.tree->num_entries(), 19u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BPlusTree, DeleteEverythingCollapsesTree) {
  TreeFixture f;
  const uint64_t n = 400;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i)), i).ok());
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(f.tree->Delete(Slice(Key8(i))).ok()) << i;
  }
  EXPECT_EQ(f.tree->num_entries(), 0u);
  auto iter = f.tree->Begin();
  ASSERT_TRUE(iter.ok());
  EXPECT_FALSE(iter.value().Valid());
  // All nodes except a root should have been freed.
  EXPECT_LE(f.tree->num_nodes(), 3u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BPlusTree, RandomizedMirrorAgainstStdMap) {
  TreeFixture f;
  Random rng(77);
  std::map<std::string, uint64_t> mirror;
  for (int op = 0; op < 4000; ++op) {
    const uint64_t k = rng.Uniform(700);
    const std::string key = Key8(k);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // insert
        Status s = f.tree->Insert(Slice(key), k);
        if (mirror.contains(key)) {
          EXPECT_TRUE(s.IsAlreadyExists());
        } else {
          EXPECT_TRUE(s.ok()) << s.ToString();
          mirror[key] = k;
        }
        break;
      }
      case 2: {  // delete
        Status s = f.tree->Delete(Slice(key));
        if (mirror.contains(key)) {
          EXPECT_TRUE(s.ok()) << s.ToString();
          mirror.erase(key);
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
        break;
      }
      default: {  // lookup + floor
        auto got = f.tree->Get(Slice(key));
        EXPECT_EQ(got.ok(), mirror.contains(key));
        auto floor = f.tree->Floor(Slice(key));
        auto ub = mirror.upper_bound(key);
        if (ub == mirror.begin()) {
          EXPECT_TRUE(floor.status().IsNotFound());
        } else {
          --ub;
          ASSERT_TRUE(floor.ok());
          EXPECT_EQ(floor.value().key, ub->first);
        }
        break;
      }
    }
  }
  EXPECT_EQ(f.tree->num_entries(), mirror.size());
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(BPlusTree, IndexIoIsCounted) {
  TreeFixture f;
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.tree->Insert(Slice(Key8(i)), i).ok());
  }
  const IoStats before = f.pager.stats();
  ASSERT_TRUE(f.tree->Get(Slice(Key8(100))).ok());
  const IoStats delta = f.pager.stats() - before;
  // One node read per level.
  EXPECT_EQ(delta.physical_reads, f.tree->height());
}

}  // namespace
}  // namespace avqdb
