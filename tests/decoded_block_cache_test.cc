// DecodedBlockCache semantics: LRU order under a byte budget, per-owner
// invalidation, zero-budget bypass, stats accounting — and a concurrent
// hammer test (run under TSan via tools/run_sanitized_tests.sh) proving
// the sharded locking.

#include "src/storage/decoded_block_cache.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace avqdb {
namespace {

DecodedBlockCache::TuplesPtr MakeBlock(uint64_t tag, size_t tuples = 4,
                                       size_t arity = 2) {
  std::vector<OrdinalTuple> block(tuples, OrdinalTuple(arity, tag));
  return std::make_shared<const std::vector<OrdinalTuple>>(std::move(block));
}

TEST(DecodedBlockCache, MissThenHitThenInvalidate) {
  DecodedBlockCache cache(/*byte_budget=*/UINT64_MAX, /*num_shards=*/1);
  int owner = 0;
  EXPECT_EQ(cache.Get(&owner, 1), nullptr);
  cache.Put(&owner, 1, MakeBlock(7));
  DecodedBlockCache::TuplesPtr hit = cache.Get(&owner, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0][0], 7u);
  cache.Invalidate(&owner, 1);
  EXPECT_EQ(cache.Get(&owner, 1), nullptr);
  const DecodedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

TEST(DecodedBlockCache, EntriesAreKeyedByOwner) {
  DecodedBlockCache cache(UINT64_MAX, 1);
  int a = 0, b = 0;
  cache.Put(&a, 1, MakeBlock(10));
  cache.Put(&b, 1, MakeBlock(20));
  ASSERT_NE(cache.Get(&a, 1), nullptr);
  EXPECT_EQ((*cache.Get(&a, 1))[0][0], 10u);
  EXPECT_EQ((*cache.Get(&b, 1))[0][0], 20u);
  cache.InvalidateOwner(&a);
  EXPECT_EQ(cache.Get(&a, 1), nullptr);
  EXPECT_NE(cache.Get(&b, 1), nullptr);  // other owner untouched
}

TEST(DecodedBlockCache, EvictsLeastRecentlyUsedWithinByteBudget) {
  const uint64_t one_block =
      DecodedBlockCache::EstimateBytes(*MakeBlock(0));
  // Room for exactly two blocks in the single shard.
  DecodedBlockCache cache(2 * one_block, 1);
  int owner = 0;
  cache.Put(&owner, 1, MakeBlock(1));
  cache.Put(&owner, 2, MakeBlock(2));
  ASSERT_NE(cache.Get(&owner, 1), nullptr);  // 1 becomes most recent
  cache.Put(&owner, 3, MakeBlock(3));        // evicts 2
  EXPECT_EQ(cache.Get(&owner, 2), nullptr);
  EXPECT_NE(cache.Get(&owner, 1), nullptr);
  EXPECT_NE(cache.Get(&owner, 3), nullptr);
  const DecodedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes_used, 2 * one_block);
}

TEST(DecodedBlockCache, EvictedEntriesStayAliveForHolders) {
  const uint64_t one_block = DecodedBlockCache::EstimateBytes(*MakeBlock(0));
  DecodedBlockCache cache(one_block, 1);
  int owner = 0;
  cache.Put(&owner, 1, MakeBlock(1));
  DecodedBlockCache::TuplesPtr held = cache.Get(&owner, 1);
  ASSERT_NE(held, nullptr);
  cache.Put(&owner, 2, MakeBlock(2));  // evicts block 1
  EXPECT_EQ(cache.Get(&owner, 1), nullptr);
  // The shared_ptr the reader took before the eviction is still usable.
  EXPECT_EQ((*held)[0][0], 1u);
}

TEST(DecodedBlockCache, PutOverwritesInPlace) {
  DecodedBlockCache cache(UINT64_MAX, 1);
  int owner = 0;
  cache.Put(&owner, 1, MakeBlock(1));
  cache.Put(&owner, 1, MakeBlock(2));
  ASSERT_NE(cache.Get(&owner, 1), nullptr);
  EXPECT_EQ((*cache.Get(&owner, 1))[0][0], 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(DecodedBlockCache, ZeroBudgetCachesNothing) {
  DecodedBlockCache cache(0, 4);
  int owner = 0;
  cache.Put(&owner, 1, MakeBlock(1));
  EXPECT_EQ(cache.Get(&owner, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(DecodedBlockCache, ClearDropsEverything) {
  DecodedBlockCache cache(UINT64_MAX, 4);
  int owner = 0;
  for (BlockId id = 0; id < 32; ++id) cache.Put(&owner, id, MakeBlock(id));
  EXPECT_EQ(cache.stats().entries, 32u);
  cache.Clear();
  const DecodedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
  EXPECT_EQ(cache.Get(&owner, 5), nullptr);
}

TEST(DecodedBlockCache, EstimateBytesIsMonotoneInBlockSize) {
  EXPECT_LT(DecodedBlockCache::EstimateBytes(*MakeBlock(0, 2)),
            DecodedBlockCache::EstimateBytes(*MakeBlock(0, 20)));
  EXPECT_LT(DecodedBlockCache::EstimateBytes(*MakeBlock(0, 4, 2)),
            DecodedBlockCache::EstimateBytes(*MakeBlock(0, 4, 8)));
}

// Concurrent readers, writers, and invalidators against a small sharded
// cache: every hit must return an internally consistent block (all
// digits equal the tag for that id), and counters must balance.
TEST(DecodedBlockCache, ConcurrentGetPutInvalidate) {
  const uint64_t one_block = DecodedBlockCache::EstimateBytes(*MakeBlock(0));
  DecodedBlockCache cache(16 * one_block, 4);
  int owners[2] = {0, 0};
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr BlockId kBlocks = 24;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &owners, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const void* owner = &owners[(t + i) % 2];
        const BlockId id = static_cast<BlockId>((t * 5 + i) % kBlocks);
        switch (i % 5) {
          case 0:
          case 1:
          case 2: {
            DecodedBlockCache::TuplesPtr got = cache.Get(owner, id);
            if (got != nullptr) {
              for (const OrdinalTuple& tuple : *got) {
                for (uint64_t digit : tuple) EXPECT_EQ(digit, id);
              }
            }
            break;
          }
          case 3:
            cache.Put(owner, id, MakeBlock(id));
            break;
          default:
            if (i % 25 == 4) {
              cache.InvalidateOwner(owner);
            } else {
              cache.Invalidate(owner, id);
            }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const DecodedBlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 3 / 5);
  EXPECT_LE(stats.bytes_used, 16 * one_block);
}

}  // namespace
}  // namespace avqdb
