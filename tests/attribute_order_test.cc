#include "src/avq/attribute_order.h"

#include <gtest/gtest.h>

#include "src/avq/relation_codec.h"
#include "src/common/random.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(AttributeOrder, EmptySampleRejected) {
  auto schema = testing::IntSchema({4, 4});
  EXPECT_TRUE(
      SuggestAttributeOrder(*schema, {}).status().IsInvalidArgument());
}

TEST(AttributeOrder, OrdersByEntropy) {
  // Attribute 0: near-unique (high entropy); attribute 1: constant;
  // attribute 2: two values. Suggested order: 1, 2, 0.
  auto schema = testing::IntSchema({1000, 4, 4});
  std::vector<OrdinalTuple> sample;
  for (uint64_t i = 0; i < 200; ++i) {
    sample.push_back({i % 997, 2, i % 2});
  }
  auto advice = SuggestAttributeOrder(*schema, sample);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->order, (std::vector<size_t>{1, 2, 0}));
  EXPECT_TRUE(advice->reorder_suggested);
  EXPECT_NEAR(advice->entropy_bits[1], 0.0, 1e-9);
  EXPECT_NEAR(advice->entropy_bits[2], 1.0, 1e-6);
  EXPECT_GT(advice->entropy_bits[0], 6.0);
}

TEST(AttributeOrder, IdentityWhenAlreadySorted) {
  auto schema = testing::IntSchema({4, 16, 64});
  std::vector<OrdinalTuple> sample;
  Random rng(1);
  for (int i = 0; i < 300; ++i) {
    sample.push_back({rng.Uniform(2), rng.Uniform(12), rng.Uniform(60)});
  }
  auto advice = SuggestAttributeOrder(*schema, sample);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(advice->reorder_suggested);
}

TEST(AttributeOrder, PermuteSchemaAndTuple) {
  auto schema = testing::IntSchema({4, 16, 64});
  const std::vector<size_t> order = {2, 0, 1};
  auto permuted = PermuteSchema(*schema, order);
  ASSERT_TRUE(permuted.ok());
  EXPECT_EQ(permuted.value()->radices(),
            (std::vector<uint64_t>{64, 4, 16}));
  EXPECT_EQ(permuted.value()->attribute(0).name, "a2");

  auto tuple = PermuteTuple({1, 2, 3}, order);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple.value(), (OrdinalTuple{3, 1, 2}));

  const auto inverse = InvertPermutation(order);
  EXPECT_EQ(inverse, (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(PermuteTuple(tuple.value(), inverse).value(),
            (OrdinalTuple{1, 2, 3}));
}

TEST(AttributeOrder, RejectsBadPermutations) {
  auto schema = testing::IntSchema({4, 4});
  EXPECT_TRUE(PermuteSchema(*schema, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(PermuteSchema(*schema, {0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(PermuteSchema(*schema, {0, 5}).status().IsInvalidArgument());
  EXPECT_TRUE(PermuteTuple({1, 2}, {1, 1}).status().IsInvalidArgument());
}

TEST(AttributeOrder, ReorderingImprovesClusteredCompression) {
  // Clustered relation whose repetitive attributes are scrambled to the
  // *end* (worst case for φ-prefix sharing). The advisor should recover
  // most of the loss.
  auto rel = GenerateRelation(ClusteredRelationSpec(20000, 50, 3)).value();
  const size_t n = rel.schema->num_attributes();
  // Move the 3 free (high-entropy) tail attributes to the front.
  std::vector<size_t> scramble;
  for (size_t i = n - 3; i < n; ++i) scramble.push_back(i);
  for (size_t i = 0; i + 3 < n; ++i) scramble.push_back(i);
  auto bad_schema = PermuteSchema(*rel.schema, scramble).value();
  std::vector<OrdinalTuple> bad_tuples;
  for (const auto& t : rel.tuples) {
    bad_tuples.push_back(PermuteTuple(t, scramble).value());
  }

  CodecOptions options;
  options.block_size = 2048;
  RelationCodec bad_codec(bad_schema, options);
  const double bad =
      bad_codec.Encode(bad_tuples).value().stats.BlockReductionPercent();

  auto advice = SuggestAttributeOrder(*bad_schema, bad_tuples).value();
  EXPECT_TRUE(advice.reorder_suggested);
  auto good_schema = PermuteSchema(*bad_schema, advice.order).value();
  std::vector<OrdinalTuple> good_tuples;
  for (const auto& t : bad_tuples) {
    good_tuples.push_back(PermuteTuple(t, advice.order).value());
  }
  RelationCodec good_codec(good_schema, options);
  const double good =
      good_codec.Encode(good_tuples).value().stats.BlockReductionPercent();

  EXPECT_GT(good, bad + 10.0)
      << "scrambled " << bad << "%, advised " << good << "%";
}

}  // namespace
}  // namespace avqdb
