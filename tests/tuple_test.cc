#include "src/schema/tuple.h"

#include <gtest/gtest.h>

#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(Tuple, EncodeDecodeRow) {
  auto schema = PaperEmployeeSchema();
  Row row = {Value("production"), Value("part-time"), Value(int64_t{24}),
             Value(int64_t{32}), Value(int64_t{0})};
  auto tuple = EncodeRow(*schema, row);
  ASSERT_TRUE(tuple.ok()) << tuple.status().ToString();
  // Fig 2.2 table (b): (3, 09, 24, 32, 00).
  EXPECT_EQ(tuple.value(), (OrdinalTuple{3, 9, 24, 32, 0}));
  auto back = DecodeTuple(*schema, tuple.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), row);
}

TEST(Tuple, EncodeRowArityMismatch) {
  auto schema = testing::IntSchema({4, 4});
  EXPECT_TRUE(EncodeRow(*schema, {Value(int64_t{1})})
                  .status()
                  .IsInvalidArgument());
}

TEST(Tuple, EncodeRowPropagatesDomainErrorsWithAttributeName) {
  auto schema = PaperEmployeeSchema();
  Row row = {Value("production"), Value("astronaut"), Value(int64_t{24}),
             Value(int64_t{32}), Value(int64_t{0})};
  auto tuple = EncodeRow(*schema, row);
  EXPECT_TRUE(tuple.status().IsNotFound());
  EXPECT_NE(tuple.status().message().find("job_title"), std::string::npos);
}

TEST(Tuple, ValidateTuple) {
  auto schema = testing::IntSchema({4, 8});
  EXPECT_TRUE(ValidateTuple(*schema, {3, 7}).ok());
  EXPECT_TRUE(ValidateTuple(*schema, {4, 0}).IsOutOfRange());
  EXPECT_TRUE(ValidateTuple(*schema, {0}).IsInvalidArgument());
  EXPECT_TRUE(ValidateTuple(*schema, {0, 0, 0}).IsInvalidArgument());
}

TEST(Tuple, CompareIsPhiOrder) {
  EXPECT_LT(CompareTuples({0, 5}, {1, 0}), 0);
  EXPECT_GT(CompareTuples({1, 0}, {0, 5}), 0);
  EXPECT_EQ(CompareTuples({2, 3}, {2, 3}), 0);
  EXPECT_LT(CompareTuples({2, 3}, {2, 4}), 0);
}

TEST(Tuple, ToString) {
  EXPECT_EQ(TupleToString({3, 8, 36}), "(3, 8, 36)");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(Tuple, AllPaperRowsRoundTrip) {
  auto schema = PaperEmployeeSchema();
  auto rows = PaperEmployeeRows();
  auto tuples = PaperEmployeeTuples();
  ASSERT_EQ(rows.size(), 50u);
  ASSERT_EQ(tuples.size(), 50u);
  for (size_t i = 0; i < rows.size(); ++i) {
    auto back = DecodeTuple(*schema, tuples[i]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace avqdb
