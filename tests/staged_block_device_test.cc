// StagedBlockDevice unit tests: copy-on-redirect over the durable block
// set, the two-barrier commit, and the shadow free pool that keeps
// logical and physical ids from colliding.

#include "src/storage/staged_block_device.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "src/storage/block_device.h"
#include "src/storage/fault_injection_device.h"

namespace avqdb {
namespace {

// Slice over a string literal (Slice has no const char* constructor).
inline Slice Str(std::string_view s) { return Slice(s); }

class StagedDeviceTest : public ::testing::Test {
 protected:
  // Layout mimicking a loaded v2 image: blocks 0/1 are pinned metadata
  // slots, blocks 2/3/4 are the durable data set.
  void SetUp() override {
    base_ = std::make_unique<MemBlockDevice>(64);
    for (int i = 0; i < 5; ++i) {
      BlockId id = base_->Allocate().value();
      ASSERT_EQ(id, static_cast<BlockId>(i));
      ASSERT_TRUE(
          base_->Write(id, Str("base" + std::to_string(i))).ok());
    }
    staged_ = std::make_unique<StagedBlockDevice>(
        base_.get(), std::set<BlockId>{0, 1}, std::set<BlockId>{2, 3, 4});
  }

  std::string ReadPrefix(const BlockDevice& device, BlockId id, size_t n) {
    std::string out;
    AVQDB_CHECK_OK(device.Read(id, &out));
    return out.substr(0, n);
  }

  std::unique_ptr<MemBlockDevice> base_;
  std::unique_ptr<StagedBlockDevice> staged_;
};

TEST_F(StagedDeviceTest, ReadsPassThroughInitially) {
  EXPECT_EQ(ReadPrefix(*staged_, 2, 5), "base2");
  EXPECT_EQ(staged_->Physical(2), 2u);
  EXPECT_EQ(staged_->redirect_count(), 0u);
}

TEST_F(StagedDeviceTest, WriteToDurableBlockRedirects) {
  ASSERT_TRUE(staged_->Write(3, Str("fresh")).ok());
  // The logical block reads back the new content...
  EXPECT_EQ(ReadPrefix(*staged_, 3, 5), "fresh");
  // ...but the durable physical block is untouched.
  EXPECT_EQ(ReadPrefix(*base_, 3, 5), "base3");
  EXPECT_NE(staged_->Physical(3), 3u);
  EXPECT_EQ(staged_->redirect_count(), 1u);
  // A second write reuses the existing redirect target.
  const BlockId target = staged_->Physical(3);
  ASSERT_TRUE(staged_->Write(3, Str("again")).ok());
  EXPECT_EQ(staged_->Physical(3), target);
  EXPECT_EQ(ReadPrefix(*staged_, 3, 5), "again");
}

TEST_F(StagedDeviceTest, WriteToFreshBlockIsInPlace) {
  BlockId id = staged_->Allocate().value();
  ASSERT_TRUE(staged_->Write(id, Str("new")).ok());
  EXPECT_EQ(staged_->Physical(id), id);
  EXPECT_EQ(staged_->redirect_count(), 0u);
}

TEST_F(StagedDeviceTest, PinnedBlocksAreProtected) {
  EXPECT_TRUE(staged_->Write(0, Str("x")).IsInvalidArgument());
  EXPECT_TRUE(staged_->Free(1).IsInvalidArgument());
}

TEST_F(StagedDeviceTest, FreeOfDurableBlockIsDeferred) {
  ASSERT_TRUE(staged_->Free(2).ok());
  std::string out;
  EXPECT_TRUE(staged_->Read(2, &out).IsInvalidArgument());
  EXPECT_TRUE(staged_->Write(2, Str("x")).IsInvalidArgument());
  EXPECT_TRUE(staged_->Free(2).IsInvalidArgument());  // double free
  // The physical block is still intact underneath — the durable image
  // must stay readable until a commit drops it.
  EXPECT_EQ(ReadPrefix(*base_, 2, 5), "base2");
}

TEST_F(StagedDeviceTest, CommitPublishesNewSetAndRecyclesOrphans) {
  ASSERT_TRUE(staged_->Write(3, Str("v2-3")).ok());
  const BlockId target = staged_->Physical(3);
  ASSERT_TRUE(staged_->Commit(1, Str("meta-v2"), {2, target, 4}).ok());

  EXPECT_EQ(ReadPrefix(*base_, 1, 7), "meta-v2");
  EXPECT_TRUE(staged_->IsDurable(target));
  EXPECT_FALSE(staged_->IsDurable(3));  // orphaned by the commit
  // The orphan is not base-freed (its id may be live as a logical id);
  // it parks in the shadow pool for reuse as a redirect target.
  EXPECT_EQ(staged_->shadow_free_count(), 1u);

  // The next redirect recycles the orphan instead of growing the device.
  const size_t before = base_->allocated_blocks();
  ASSERT_TRUE(staged_->Write(4, Str("v3-4")).ok());
  EXPECT_EQ(staged_->Physical(4), 3u);
  EXPECT_EQ(base_->allocated_blocks(), before);
  EXPECT_EQ(staged_->shadow_free_count(), 0u);
}

TEST_F(StagedDeviceTest, CommitRejectsPinnedIdsInDataList) {
  EXPECT_TRUE(staged_->Commit(1, Str("m"), {1, 2}).IsInvalidArgument());
  EXPECT_TRUE(staged_->Commit(5, Str("m"), {2}).IsInvalidArgument());
}

TEST_F(StagedDeviceTest, LogicalIdNeverCollidesAfterManyCommitCycles) {
  // Regression guard for the id-collision hazard: repeatedly rewrite and
  // commit; every live logical id must keep resolving to a distinct
  // physical block holding its own content.
  for (int round = 0; round < 12; ++round) {
    for (BlockId id : {BlockId{2}, BlockId{3}, BlockId{4}}) {
      ASSERT_TRUE(staged_
                      ->Write(id, Str("r" + std::to_string(round) + "-" +
                                        std::to_string(id)))
                      .ok());
    }
    std::vector<BlockId> durable = {staged_->Physical(2),
                                    staged_->Physical(3),
                                    staged_->Physical(4)};
    ASSERT_TRUE(
        staged_->Commit(round % 2, Str("meta"), durable).ok());
    std::set<BlockId> distinct(durable.begin(), durable.end());
    ASSERT_EQ(distinct.size(), 3u) << "round " << round;
    for (BlockId id : {BlockId{2}, BlockId{3}, BlockId{4}}) {
      const std::string expected =
          "r" + std::to_string(round) + "-" + std::to_string(id);
      ASSERT_EQ(ReadPrefix(*staged_, id, expected.size()), expected);
    }
  }
  // The device stays bounded: 5 original + at most one redirect target
  // per durable block in flight plus the shadow pool.
  EXPECT_LE(base_->allocated_blocks(), 8u + staged_->shadow_free_count());
}

TEST_F(StagedDeviceTest, FailedCommitLeavesDurableSetUntouched) {
  FaultInjectionBlockDevice fault(base_.get());
  StagedBlockDevice staged(&fault, {0, 1}, {2, 3, 4});
  ASSERT_TRUE(staged.Write(2, Str("doomed")).ok());
  fault.FailWriteAt(1);  // the metadata-slot write inside Commit
  EXPECT_TRUE(
      staged.Commit(1, Str("meta"), {staged.Physical(2), 3, 4}).IsIOError());
  // Durable set unchanged: block 2 is still the durable image.
  EXPECT_TRUE(staged.IsDurable(2));
  EXPECT_FALSE(staged.IsDurable(staged.Physical(2)));
}

}  // namespace
}  // namespace avqdb
