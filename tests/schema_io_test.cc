#include "src/schema/schema_io.h"

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/schema/domain.h"
#include "src/schema/tuple.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

SchemaPtr RoundTrip(const Schema& schema) {
  std::string bytes;
  EncodeSchema(schema, &bytes);
  Slice input(bytes);
  auto decoded = DecodeSchema(&input);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(input.empty());
  return decoded.ok() ? decoded.value() : nullptr;
}

TEST(SchemaIo, IntegerSchemaRoundTrip) {
  auto schema = testing::IntSchema({8, 300, 70000, 2});
  auto decoded = RoundTrip(*schema);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->radices(), schema->radices());
  EXPECT_EQ(decoded->digit_widths(), schema->digit_widths());
  EXPECT_EQ(decoded->attribute(1).name, "a1");
  EXPECT_EQ(decoded->attribute(0).domain->kind(),
            DomainKind::kIntegerRange);
}

TEST(SchemaIo, NegativeIntegerRanges) {
  std::vector<Attribute> attrs = {
      {"t", std::make_shared<IntegerRangeDomain>(-40, 50)}};
  auto schema = Schema::Create(std::move(attrs)).value();
  auto decoded = RoundTrip(*schema);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->attribute(0).domain->Encode(Value(int64_t{-40})).value(),
            0u);
  EXPECT_EQ(decoded->attribute(0).domain->Decode(90).value(),
            Value(int64_t{50}));
}

TEST(SchemaIo, PaperEmployeeSchemaRoundTrip) {
  auto schema = PaperEmployeeSchema();
  auto decoded = RoundTrip(*schema);
  ASSERT_NE(decoded, nullptr);
  // Categorical ordinals survive: production = 3, supervisor = 10.
  EXPECT_EQ(decoded->attribute(0).domain->Encode(Value("production")).value(),
            3u);
  EXPECT_EQ(decoded->attribute(1).domain->Encode(Value("supervisor")).value(),
            10u);
  // Rows encode identically through both schemas.
  for (const Row& row : PaperEmployeeRows()) {
    EXPECT_EQ(EncodeRow(*schema, row).value(),
              EncodeRow(*decoded, row).value());
  }
}

TEST(SchemaIo, StringDictionaryDomainRoundTrip) {
  auto dict_domain = std::make_shared<StringDictionaryDomain>(100);
  ASSERT_TRUE(dict_domain->Encode(Value("alpha")).ok());
  ASSERT_TRUE(dict_domain->Encode(Value("beta")).ok());
  std::vector<Attribute> attrs = {{"tag", dict_domain}};
  auto schema = Schema::Create(std::move(attrs)).value();
  auto decoded = RoundTrip(*schema);
  ASSERT_NE(decoded, nullptr);
  const Domain& domain = *decoded->attribute(0).domain;
  EXPECT_EQ(domain.cardinality(), 100u);
  // Assigned codes survive; new values continue after them.
  EXPECT_EQ(domain.Encode(Value("beta")).value(), 1u);
  EXPECT_EQ(domain.Encode(Value("gamma")).value(), 2u);
}

TEST(SchemaIo, DecodeRejectsTruncation) {
  auto schema = PaperEmployeeSchema();
  std::string bytes;
  EncodeSchema(*schema, &bytes);
  for (size_t cut = 0; cut < bytes.size(); cut += 17) {
    Slice input(bytes.data(), cut);
    auto decoded = DecodeSchema(&input);
    EXPECT_FALSE(decoded.ok()) << "cut " << cut;
  }
}

TEST(SchemaIo, DecodeRejectsUnknownDomainKind) {
  auto schema = testing::IntSchema({4});
  std::string bytes;
  EncodeSchema(*schema, &bytes);
  // The kind byte follows count (1 byte varint) + name ("a0": 1+2).
  bytes[4] = '\x7f';
  Slice input(bytes);
  EXPECT_TRUE(DecodeSchema(&input).status().IsCorruption());
}

TEST(SchemaIo, DecodeRejectsImplausibleCount) {
  std::string bytes;
  PutVarint64(&bytes, 100000);
  Slice input(bytes);
  EXPECT_TRUE(DecodeSchema(&input).status().IsCorruption());
}

}  // namespace
}  // namespace avqdb
