#include "src/storage/block_device.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace avqdb {
namespace {

// Slice over a string literal (Slice has no const char* constructor).
inline Slice Str(std::string_view s) { return Slice(s); }

TEST(MemBlockDevice, AllocateReadWrite) {
  MemBlockDevice device(64);
  EXPECT_EQ(device.block_size(), 64u);
  auto id = device.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(device.allocated_blocks(), 1u);

  std::string fresh;
  ASSERT_TRUE(device.Read(id.value(), &fresh).ok());
  EXPECT_EQ(fresh, std::string(64, '\0'));  // zero-initialized

  std::string payload = "hello";
  ASSERT_TRUE(device.Write(id.value(), Slice(payload)).ok());
  std::string back;
  ASSERT_TRUE(device.Read(id.value(), &back).ok());
  EXPECT_EQ(back.substr(0, 5), "hello");
  EXPECT_EQ(back.size(), 64u);  // zero-padded
  EXPECT_EQ(back[5], '\0');
}

TEST(MemBlockDevice, WriteTooLargeRejected) {
  MemBlockDevice device(8);
  auto id = device.Allocate();
  ASSERT_TRUE(id.ok());
  std::string big(9, 'x');
  EXPECT_TRUE(device.Write(id.value(), Slice(big)).IsInvalidArgument());
}

TEST(MemBlockDevice, AccessToUnallocatedRejected) {
  MemBlockDevice device(8);
  std::string out;
  EXPECT_TRUE(device.Read(5, &out).IsInvalidArgument());
  EXPECT_TRUE(device.Write(5, Slice(out)).IsInvalidArgument());
  EXPECT_TRUE(device.Free(5).IsInvalidArgument());
}

TEST(MemBlockDevice, FreeAndRecycle) {
  MemBlockDevice device(8);
  BlockId a = device.Allocate().value();
  BlockId b = device.Allocate().value();
  std::string payload = "data";
  ASSERT_TRUE(device.Write(a, Slice(payload)).ok());
  ASSERT_TRUE(device.Free(a).ok());
  EXPECT_EQ(device.allocated_blocks(), 1u);
  std::string out;
  EXPECT_TRUE(device.Read(a, &out).IsInvalidArgument());
  EXPECT_TRUE(device.Free(a).IsInvalidArgument());  // double free
  // The freed id is recycled, zeroed.
  BlockId c = device.Allocate().value();
  EXPECT_EQ(c, a);
  ASSERT_TRUE(device.Read(c, &out).ok());
  EXPECT_EQ(out, std::string(8, '\0'));
  (void)b;
}

TEST(MemBlockDevice, CorruptByteHook) {
  MemBlockDevice device(8);
  BlockId id = device.Allocate().value();
  std::string payload = "abcdefgh";
  ASSERT_TRUE(device.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(device.CorruptByte(id, 2, 0x7f).ok());
  std::string out;
  ASSERT_TRUE(device.Read(id, &out).ok());
  EXPECT_NE(out[2], 'c');
  EXPECT_TRUE(device.CorruptByte(id, 8, 0).IsInvalidArgument());
}

class FileBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = "/tmp/avqdb_device_test_" + path_;
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileBlockDeviceTest, CreateWriteReadPersist) {
  auto device = FileBlockDevice::Create(path_, 32);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  BlockId a = device.value()->Allocate().value();
  BlockId b = device.value()->Allocate().value();
  std::string pa = "first", pb = "second";
  ASSERT_TRUE(device.value()->Write(a, Slice(pa)).ok());
  ASSERT_TRUE(device.value()->Write(b, Slice(pb)).ok());
  EXPECT_EQ(device.value()->allocated_blocks(), 2u);

  // Reopen and read back.
  auto reopened = FileBlockDevice::Open(path_, 32);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->allocated_blocks(), 2u);
  std::string out;
  ASSERT_TRUE(reopened.value()->Read(a, &out).ok());
  EXPECT_EQ(out.substr(0, 5), "first");
  ASSERT_TRUE(reopened.value()->Read(b, &out).ok());
  EXPECT_EQ(out.substr(0, 6), "second");
}

TEST_F(FileBlockDeviceTest, OpenMissingFileFails) {
  auto device = FileBlockDevice::Open(path_ + ".missing", 32);
  EXPECT_TRUE(device.status().IsIOError());
}

TEST_F(FileBlockDeviceTest, OpenRejectsMisalignedFile) {
  {
    auto device = FileBlockDevice::Create(path_, 32);
    ASSERT_TRUE(device.ok());
    ASSERT_TRUE(device.value()->Allocate().ok());
  }
  // Block size 24 does not divide the 32-byte file.
  auto reopened = FileBlockDevice::Open(path_, 24);
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(FileBlockDeviceTest, FreeListRecyclesIds) {
  auto device = FileBlockDevice::Create(path_, 32);
  ASSERT_TRUE(device.ok());
  BlockId a = device.value()->Allocate().value();
  ASSERT_TRUE(device.value()->Free(a).ok());
  EXPECT_EQ(device.value()->Allocate().value(), a);
}

TEST_F(FileBlockDeviceTest, FreedIdsRejectedUntilReallocated) {
  // Matches MemBlockDevice: I/O on a freed block is InvalidArgument, not
  // a silent read of stale file bytes.
  auto device = FileBlockDevice::Create(path_, 32).value();
  BlockId a = device->Allocate().value();
  BlockId b = device->Allocate().value();
  ASSERT_TRUE(device->Write(b, Str("keep")).ok());
  ASSERT_TRUE(device->Free(a).ok());
  std::string out;
  EXPECT_TRUE(device->Read(a, &out).IsInvalidArgument());
  EXPECT_TRUE(device->Write(a, Str("x")).IsInvalidArgument());
  EXPECT_TRUE(device->Free(a).IsInvalidArgument());  // double free
  // Unaffected neighbor still works.
  EXPECT_TRUE(device->Read(b, &out).ok());
  // Reallocation makes the id live again.
  EXPECT_EQ(device->Allocate().value(), a);
  EXPECT_TRUE(device->Write(a, Str("y")).ok());
}

TEST_F(FileBlockDeviceTest, RecycledBlocksComeBackZeroed) {
  auto device = FileBlockDevice::Create(path_, 32).value();
  BlockId a = device->Allocate().value();
  ASSERT_TRUE(device->Write(a, Str("sensitive")).ok());
  ASSERT_TRUE(device->Free(a).ok());
  ASSERT_EQ(device->Allocate().value(), a);
  std::string out;
  ASSERT_TRUE(device->Read(a, &out).ok());
  EXPECT_EQ(out, std::string(32, '\0'));
}

TEST_F(FileBlockDeviceTest, OutOfRangeIdsRejected) {
  auto device = FileBlockDevice::Create(path_, 32).value();
  std::string out;
  EXPECT_TRUE(device->Read(5, &out).IsInvalidArgument());
  EXPECT_TRUE(device->Write(5, Str("x")).IsInvalidArgument());
  EXPECT_TRUE(device->Free(5).IsInvalidArgument());
}

TEST_F(FileBlockDeviceTest, SyncFlushesAndSucceeds) {
  auto device = FileBlockDevice::Create(path_, 32).value();
  BlockId a = device->Allocate().value();
  ASSERT_TRUE(device->Write(a, Str("durable")).ok());
  EXPECT_TRUE(device->Sync().ok());
  // Reopen sees the synced content.
  device.reset();
  auto reopened = FileBlockDevice::Open(path_, 32).value();
  std::string out;
  ASSERT_TRUE(reopened->Read(a, &out).ok());
  EXPECT_EQ(out.substr(0, 7), "durable");
}

TEST(MemBlockDeviceSync, SyncIsANoOpThatSucceeds) {
  MemBlockDevice device(32);
  EXPECT_TRUE(device.Sync().ok());
}

}  // namespace
}  // namespace avqdb
