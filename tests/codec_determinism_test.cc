// Determinism of the parallel encode/decode pipeline: for every codec
// option combination and every parallelism setting, the encoded blocks
// must be byte-for-byte identical to the serial path's, the stats must
// match, and DecodeAll must return the same tuples. This is the contract
// docs/FORMAT.md "Parallel encoding" promises.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/avq/relation_codec.h"
#include "src/common/thread_pool.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

using ::avqdb::testing::IntSchema;
using ::avqdb::testing::PaperShapeSchema;
using ::avqdb::testing::RandomTuples;

struct OptionCombo {
  CodecVariant variant;
  RepresentativeChoice representative;
  bool run_length_zeros;
};

std::vector<OptionCombo> AllCombos() {
  std::vector<OptionCombo> combos;
  for (CodecVariant variant :
       {CodecVariant::kChainDelta, CodecVariant::kRepresentativeDelta}) {
    for (RepresentativeChoice rep :
         {RepresentativeChoice::kMiddle, RepresentativeChoice::kFirst}) {
      for (bool rle : {true, false}) {
        combos.push_back({variant, rep, rle});
      }
    }
  }
  return combos;
}

std::string ComboName(const OptionCombo& combo) {
  std::string name =
      combo.variant == CodecVariant::kChainDelta ? "chain" : "rep";
  name += combo.representative == RepresentativeChoice::kMiddle ? "/middle"
                                                                : "/first";
  name += combo.run_length_zeros ? "/rle" : "/norle";
  return name;
}

CodecOptions MakeOptions(const OptionCombo& combo, size_t parallelism,
                         size_t block_size) {
  CodecOptions options;
  options.variant = combo.variant;
  options.representative = combo.representative;
  options.run_length_zeros = combo.run_length_zeros;
  options.block_size = block_size;
  options.parallelism = parallelism;
  return options;
}

void ExpectStatsEqual(const CompressionStats& serial,
                      const CompressionStats& parallel) {
  EXPECT_EQ(serial.tuple_count, parallel.tuple_count);
  EXPECT_EQ(serial.tuple_width, parallel.tuple_width);
  EXPECT_EQ(serial.block_size, parallel.block_size);
  EXPECT_EQ(serial.uncoded_blocks, parallel.uncoded_blocks);
  EXPECT_EQ(serial.uncoded_bytes, parallel.uncoded_bytes);
  EXPECT_EQ(serial.coded_blocks, parallel.coded_blocks);
  EXPECT_EQ(serial.coded_payload_bytes, parallel.coded_payload_bytes);
}

// The parallelism settings to pit against the serial baseline: an even
// shard count, a prime one that never divides the input evenly, and the
// hardware default.
const size_t kParallelSettings[] = {2, 7, 0};

class DeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeterminismTest, AllOptionCombosMatchSerial) {
  const size_t n = GetParam();
  // 512-byte blocks so even small relations span several blocks and the
  // 10k relation spans hundreds.
  const size_t block_size = 512;
  SchemaPtr schema = PaperShapeSchema();
  std::vector<OrdinalTuple> tuples = RandomTuples(*schema, n, 1000 + n);

  for (const OptionCombo& combo : AllCombos()) {
    SCOPED_TRACE(ComboName(combo));
    RelationCodec serial(schema, MakeOptions(combo, 1, block_size));
    auto serial_encoded = serial.Encode(tuples);
    ASSERT_TRUE(serial_encoded.ok()) << serial_encoded.status().ToString();
    auto serial_decoded = serial.DecodeAll(serial_encoded->blocks);
    ASSERT_TRUE(serial_decoded.ok()) << serial_decoded.status().ToString();

    for (size_t parallelism : kParallelSettings) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
      RelationCodec parallel(schema,
                             MakeOptions(combo, parallelism, block_size));
      auto encoded = parallel.Encode(tuples);
      ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
      // The headline guarantee: byte-identical blocks.
      EXPECT_EQ(encoded->blocks, serial_encoded->blocks);
      ExpectStatsEqual(serial_encoded->stats, encoded->stats);

      auto decoded = parallel.DecodeAll(serial_encoded->blocks);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(*decoded, *serial_decoded);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeterminismTest,
                         ::testing::Values(0, 1, 2, 10000),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(DeterminismTest, EncodeSortedMatchesSerialOnPresortedInput) {
  SchemaPtr schema = IntSchema({16, 256, 256, 4096});
  std::vector<OrdinalTuple> tuples = RandomTuples(*schema, 5000, 77);
  std::sort(tuples.begin(), tuples.end(), [](const OrdinalTuple& a,
                                             const OrdinalTuple& b) {
    return CompareTuples(a, b) < 0;
  });

  CodecOptions serial_options;
  serial_options.block_size = 1024;
  RelationCodec serial(schema, serial_options);
  auto baseline = serial.EncodeSorted(tuples);
  ASSERT_TRUE(baseline.ok());

  for (size_t parallelism : kParallelSettings) {
    CodecOptions options = serial_options;
    options.parallelism = parallelism;
    RelationCodec codec(schema, options);
    auto encoded = codec.EncodeSorted(tuples);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    EXPECT_EQ(encoded->blocks, baseline->blocks)
        << "parallelism=" << parallelism;
    ExpectStatsEqual(baseline->stats, encoded->stats);
  }
}

TEST(DeterminismTest, PartitionMatchesSerialBlockBoundaries) {
  // The serial partition pass must predict exactly the block boundaries
  // (and payload sizes) the incremental serial encoder produces.
  SchemaPtr schema = PaperShapeSchema();
  std::vector<OrdinalTuple> tuples = RandomTuples(*schema, 4000, 9);
  std::sort(tuples.begin(), tuples.end(), [](const OrdinalTuple& a,
                                             const OrdinalTuple& b) {
    return CompareTuples(a, b) < 0;
  });
  for (const OptionCombo& combo : AllCombos()) {
    SCOPED_TRACE(ComboName(combo));
    RelationCodec codec(schema, MakeOptions(combo, 1, 512));
    auto encoded = codec.EncodeSorted(tuples);
    ASSERT_TRUE(encoded.ok());
    std::vector<BlockRange> ranges = codec.PartitionSorted(tuples);
    ASSERT_EQ(ranges.size(), encoded->blocks.size());
    size_t covered = 0;
    for (const BlockRange& range : ranges) {
      EXPECT_EQ(range.begin, covered);
      EXPECT_GT(range.end, range.begin);
      covered = range.end;
    }
    EXPECT_EQ(covered, tuples.size());
  }
}

TEST(DeterminismTest, RepeatedParallelEncodesAreIdentical) {
  // Parallel scheduling varies run to run; the output must not.
  SchemaPtr schema = PaperShapeSchema();
  std::vector<OrdinalTuple> tuples = RandomTuples(*schema, 3000, 5);
  CodecOptions options;
  options.block_size = 512;
  options.parallelism = 0;
  RelationCodec codec(schema, options);
  auto first = codec.Encode(tuples);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto again = codec.Encode(tuples);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->blocks, first->blocks) << "run " << i;
  }
}

TEST(DeterminismTest, ParallelismLargerThanRelation) {
  // More shards than tuples (and than blocks) must degrade gracefully.
  SchemaPtr schema = PaperShapeSchema();
  std::vector<OrdinalTuple> tuples = RandomTuples(*schema, 3, 11);
  CodecOptions serial_options;
  RelationCodec serial(schema, serial_options);
  auto baseline = serial.Encode(tuples);
  ASSERT_TRUE(baseline.ok());

  CodecOptions options;
  options.parallelism = 64;
  RelationCodec codec(schema, options);
  auto encoded = codec.Encode(tuples);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->blocks, baseline->blocks);
}

}  // namespace
}  // namespace avqdb
