#include "src/schema/dictionary.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(Dictionary, FromValuesAssignsPositions) {
  auto dict = Dictionary::FromValues({"zebra", "apple", "mango"});
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->Lookup("zebra").value(), 0u);
  EXPECT_EQ(dict->Lookup("apple").value(), 1u);
  EXPECT_EQ(dict->Lookup("mango").value(), 2u);
  EXPECT_EQ(dict->Decode(1).value(), "apple");
  EXPECT_EQ(dict->size(), 3u);
  EXPECT_EQ(dict->capacity(), 3u);
}

TEST(Dictionary, FromValuesRejectsDuplicates) {
  auto dict = Dictionary::FromValues({"a", "b", "a"});
  EXPECT_TRUE(dict.status().IsInvalidArgument());
}

TEST(Dictionary, LookupMissing) {
  auto dict = Dictionary::FromValues({"a"});
  ASSERT_TRUE(dict.ok());
  EXPECT_TRUE(dict->Lookup("b").status().IsNotFound());
}

TEST(Dictionary, DecodeOutOfRange) {
  auto dict = Dictionary::FromValues({"a"});
  ASSERT_TRUE(dict.ok());
  EXPECT_TRUE(dict->Decode(1).status().IsOutOfRange());
}

TEST(Dictionary, LookupOrAddGrows) {
  Dictionary dict(3);
  EXPECT_EQ(dict.LookupOrAdd("x").value(), 0u);
  EXPECT_EQ(dict.LookupOrAdd("y").value(), 1u);
  EXPECT_EQ(dict.LookupOrAdd("x").value(), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(Dictionary, LookupOrAddRespectsCapacity) {
  Dictionary dict(2);
  ASSERT_TRUE(dict.LookupOrAdd("a").ok());
  ASSERT_TRUE(dict.LookupOrAdd("b").ok());
  EXPECT_TRUE(dict.LookupOrAdd("c").status().IsResourceExhausted());
  EXPECT_TRUE(dict.LookupOrAdd("a").ok());  // existing still fine
}

TEST(Dictionary, SerializationRoundTrip) {
  Dictionary dict(10);
  ASSERT_TRUE(dict.LookupOrAdd("alpha").ok());
  ASSERT_TRUE(dict.LookupOrAdd("beta").ok());
  ASSERT_TRUE(dict.LookupOrAdd("").ok());  // empty string is a value
  std::string encoded;
  dict.EncodeTo(&encoded);
  auto decoded = Dictionary::DecodeFrom(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->capacity(), 10u);
  EXPECT_EQ(decoded->size(), 3u);
  EXPECT_EQ(decoded->Lookup("beta").value(), 1u);
  EXPECT_EQ(decoded->Lookup("").value(), 2u);
}

TEST(Dictionary, DecodeRejectsTruncation) {
  Dictionary dict(4);
  ASSERT_TRUE(dict.LookupOrAdd("somewhat-long-value").ok());
  std::string encoded;
  dict.EncodeTo(&encoded);
  for (size_t cut = 1; cut < encoded.size(); cut += 3) {
    auto decoded = Dictionary::DecodeFrom(encoded.substr(0, cut));
    EXPECT_TRUE(decoded.status().IsCorruption()) << "cut at " << cut;
  }
}

TEST(Dictionary, DecodeRejectsCountOverCapacity) {
  std::string encoded;
  // capacity 1, count 2
  encoded.push_back(1);
  encoded.push_back(2);
  auto decoded = Dictionary::DecodeFrom(encoded);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

}  // namespace
}  // namespace avqdb
