// Decode-kernel dispatch and byte-identity: every compiled-in kernel must
// produce the digit-for-digit output of the scalar baseline on every
// valid block (the format contract of docs/FORMAT.md), the registry must
// resolve names and ISA availability gracefully (unknown or unavailable
// requests fall back to scalar), and the arena must stop allocating once
// warm.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/avq/block_decoder.h"
#include "src/avq/codec_options.h"
#include "src/avq/decode_kernel.h"
#include "src/common/random.h"
#include "src/db/block_codecs.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

using ::avqdb::testing::IntSchema;
using ::avqdb::testing::RandomTuple;

// Restores auto dispatch (and the environment) no matter how a test exits.
struct KernelOverrideGuard {
  ~KernelOverrideGuard() {
    unsetenv("AVQDB_DECODE_KERNEL");
    SetDecodeKernelForTesting(nullptr);
  }
};

uint64_t FallbackCount() {
  return obs::MetricsRegistry::Global()
      .GetCounter(obs::kDecodeKernelFallbacks)
      ->value();
}

// ---- registry and resolution ----

TEST(DecodeKernelRegistry, ScalarIsAlwaysFirstAndAvailable) {
  const auto& kernels = AllDecodeKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels[0]->name(), "scalar");
  EXPECT_TRUE(kernels[0]->Available());
  EXPECT_EQ(FindDecodeKernel("scalar"), kernels[0]);
}

TEST(DecodeKernelRegistry, FindByNameRoundTrips) {
  for (const DecodeKernel* kernel : AllDecodeKernels()) {
    EXPECT_EQ(FindDecodeKernel(kernel->name()), kernel);
  }
  EXPECT_EQ(FindDecodeKernel("no-such-isa"), nullptr);
  EXPECT_EQ(FindDecodeKernel(""), nullptr);
}

TEST(DecodeKernelRegistry, AutoPicksAnAvailableKernelWithoutFallback) {
  for (const char* request : {static_cast<const char*>(nullptr), "", "auto"}) {
    bool fell_back = true;
    const DecodeKernel& kernel = ResolveDecodeKernel(request, &fell_back);
    EXPECT_FALSE(fell_back);
    EXPECT_TRUE(kernel.Available());
  }
}

TEST(DecodeKernelRegistry, ExplicitScalarResolvesWithoutFallback) {
  bool fell_back = true;
  const DecodeKernel& kernel = ResolveDecodeKernel("scalar", &fell_back);
  EXPECT_FALSE(fell_back);
  EXPECT_STREQ(kernel.name(), "scalar");
}

TEST(DecodeKernelRegistry, UnknownNameFallsBackToScalarAndCounts) {
  const uint64_t before = FallbackCount();
  bool fell_back = false;
  const DecodeKernel& kernel = ResolveDecodeKernel("vliw9000", &fell_back);
  EXPECT_TRUE(fell_back);
  EXPECT_STREQ(kernel.name(), "scalar");
  EXPECT_EQ(FallbackCount(), before + 1);
}

TEST(DecodeKernelRegistry, ForeignIsaNameFallsBackToScalar) {
  // A kernel name that is real on some architecture but not compiled into
  // this binary (x86-64 lacks neon; aarch64 lacks the x86 kernels) must
  // degrade exactly like an unknown name.
  for (const char* name : {"neon", "sse42", "avx2"}) {
    if (FindDecodeKernel(name) != nullptr) continue;  // native here
    bool fell_back = false;
    const DecodeKernel& kernel = ResolveDecodeKernel(name, &fell_back);
    EXPECT_TRUE(fell_back) << name;
    EXPECT_STREQ(kernel.name(), "scalar") << name;
  }
}

TEST(DecodeKernelDispatch, EnvironmentOverrideForcesKernel) {
  KernelOverrideGuard guard;
  setenv("AVQDB_DECODE_KERNEL", "scalar", 1);
  SetDecodeKernelForTesting(nullptr);  // drop the cached resolution
  EXPECT_STREQ(SelectedDecodeKernel().name(), "scalar");
}

TEST(DecodeKernelDispatch, BogusEnvironmentOverrideFallsBackToScalar) {
  KernelOverrideGuard guard;
  const uint64_t before = FallbackCount();
  setenv("AVQDB_DECODE_KERNEL", "quantum", 1);
  SetDecodeKernelForTesting(nullptr);
  EXPECT_STREQ(SelectedDecodeKernel().name(), "scalar");
  EXPECT_GT(FallbackCount(), before);
}

// ---- byte identity across the random schema/options/seed matrix ----

// Cardinalities spanning 1..8-byte digits so the widening loops see every
// width, including the 8-byte load path.
const uint64_t kCardinalities[] = {2,          7,          256,
                                   257,        4096,       65536,
                                   1u << 20,   1ull << 33, 1ull << 47,
                                   1ull << 62};

SchemaPtr RandomSchema(Random& rng) {
  const size_t num_attrs = 1 + rng.Uniform(6);
  std::vector<uint64_t> cards;
  for (size_t i = 0; i < num_attrs; ++i) {
    cards.push_back(kCardinalities[rng.Uniform(std::size(kCardinalities))]);
  }
  return IntSchema(cards);
}

CodecOptions RandomOptions(Random& rng) {
  CodecOptions options;
  options.variant = rng.Bernoulli(0.5) ? CodecVariant::kChainDelta
                                       : CodecVariant::kRepresentativeDelta;
  options.representative = rng.Bernoulli(0.5)
                               ? RepresentativeChoice::kMiddle
                               : RepresentativeChoice::kFirst;
  options.run_length_zeros = rng.Bernoulli(0.5);
  options.checksum = rng.Bernoulli(0.5);
  const size_t block_sizes[] = {512, 4096, 8192};
  options.block_size = block_sizes[rng.Uniform(3)];
  return options;
}

// One coded block of clustered random content (duplicates and zero deltas
// included — the cases RLE elides hardest).
std::string RandomBlock(const Schema& schema, const TupleBlockCodec& codec,
                        Random& rng, std::vector<OrdinalTuple>* tuples_out) {
  std::vector<OrdinalTuple> tuples;
  for (size_t i = 0; i < 500; ++i) {
    if (!tuples.empty() && rng.Bernoulli(0.25)) {
      tuples.push_back(tuples[rng.Uniform(tuples.size())]);
    } else {
      tuples.push_back(RandomTuple(schema, rng));
    }
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.resize(codec.FillCount(tuples, 0));
  if (tuples_out != nullptr) *tuples_out = tuples;
  return codec.EncodeBlock(tuples).value();
}

TEST(DecodeKernelIdentity, AllKernelsMatchScalarAcrossPropertyMatrix) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Random rng(seed);
    SchemaPtr schema = RandomSchema(rng);
    auto codec = MakeAvqBlockCodec(schema, RandomOptions(rng));
    std::vector<OrdinalTuple> expected;
    const std::string image = RandomBlock(*schema, *codec, rng, &expected);
    ASSERT_FALSE(expected.empty());

    DecodeArena reference;
    BlockHeader header;
    ASSERT_TRUE(DecodeBlockToArena(*schema, Slice(image),
                                   *FindDecodeKernel("scalar"), &reference,
                                   &header)
                    .ok())
        << "seed " << seed;
    ASSERT_EQ(header.tuple_count, expected.size());
    const size_t arity = schema->num_attributes();
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(0, std::memcmp(reference.digit_row(i), expected[i].data(),
                               arity * sizeof(uint64_t)))
          << "seed " << seed << " row " << i;
    }

    for (const DecodeKernel* kernel : AllDecodeKernels()) {
      if (!kernel->Available()) continue;
      DecodeArena arena;
      BlockHeader h;
      ASSERT_TRUE(
          DecodeBlockToArena(*schema, Slice(image), *kernel, &arena, &h).ok())
          << kernel->name() << " seed " << seed;
      ASSERT_EQ(h.tuple_count, header.tuple_count);
      ASSERT_EQ(0, std::memcmp(arena.digit_row(0), reference.digit_row(0),
                               expected.size() * arity * sizeof(uint64_t)))
          << kernel->name() << " seed " << seed;
    }
  }
}

TEST(DecodeKernelIdentity, ForcedKernelDecodeBlockMatchesScalar) {
  // The full dispatched path: force each kernel as the process selection
  // and run the public DecodeBlock wrapper.
  KernelOverrideGuard guard;
  for (uint64_t seed = 50; seed <= 62; ++seed) {
    Random rng(seed);
    SchemaPtr schema = RandomSchema(rng);
    auto codec = MakeAvqBlockCodec(schema, RandomOptions(rng));
    std::vector<OrdinalTuple> expected;
    const std::string image = RandomBlock(*schema, *codec, rng, &expected);

    for (const DecodeKernel* kernel : AllDecodeKernels()) {
      if (!kernel->Available()) continue;
      SetDecodeKernelForTesting(kernel);
      auto decoded = DecodeBlock(*schema, Slice(image));
      ASSERT_TRUE(decoded.ok()) << kernel->name() << " seed " << seed;
      EXPECT_EQ(decoded->tuples, expected) << kernel->name() << " seed "
                                           << seed;
    }
  }
}

// True when every decoded digit is inside its radix — the domain all
// valid blocks decode into. When the scalar baseline's output is fully in
// domain, the zero-skip kernels are provably byte-identical (row by row,
// a valid predecessor plus the same difference yields the same digits);
// out-of-domain digits only arise from corruption, where the kernel
// contract (see decode_kernel_impl.h) requires matching *structural*
// errors but not matching arithmetic on garbage.
bool RowsInDomain(const DecodeArena& arena, const Schema& schema,
                  size_t count) {
  const auto& radices = schema.radices();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t* row = arena.digit_row(i);
    for (size_t d = 0; d < radices.size(); ++d) {
      if (row[d] >= radices[d]) return false;
    }
  }
  return true;
}

TEST(DecodeKernelIdentity, StructuralCorruptionFailsIdenticallyAcrossKernels) {
  // Stream-structure damage (bad leading-zero counts, truncated suffixes,
  // trailing bytes) is detected during expansion, which is the same code
  // shape in every kernel — the Status must match word for word.
  SchemaPtr schema = IntSchema({65536, 4096, 256});
  CodecOptions options;
  options.checksum = false;  // let the damage reach the kernels
  options.run_length_zeros = true;
  options.block_size = 4096;
  auto codec = MakeAvqBlockCodec(schema, options);
  Random rng(70);
  const std::string image = RandomBlock(*schema, *codec, rng, nullptr);
  const size_t m = schema->tuple_width();

  // The first difference's RLE count byte sits right after the header and
  // the representative's m-byte image.
  const size_t first_count_byte = kBlockHeaderSize + m;
  std::vector<std::string> mutants;
  std::string bad_count = image;
  bad_count[first_count_byte] = static_cast<char>(0xff);  // z > m
  mutants.push_back(bad_count);
  std::string short_suffix = image;
  // Claiming zero elided bytes everywhere overruns the stream's real
  // length: some suffix (or a later count byte) comes up short.
  for (size_t i = first_count_byte; i < short_suffix.size(); i += m + 1) {
    short_suffix[i] = 0;
  }
  mutants.push_back(short_suffix);

  for (const std::string& mutated : mutants) {
    DecodeArena scalar_arena;
    BlockHeader h;
    const Status scalar_status =
        DecodeBlockToArena(*schema, Slice(mutated),
                           *FindDecodeKernel("scalar"), &scalar_arena, &h);
    ASSERT_FALSE(scalar_status.ok());
    for (const DecodeKernel* kernel : AllDecodeKernels()) {
      if (!kernel->Available()) continue;
      DecodeArena arena;
      BlockHeader kh;
      const Status status =
          DecodeBlockToArena(*schema, Slice(mutated), *kernel, &arena, &kh);
      EXPECT_EQ(status.ToString(), scalar_status.ToString())
          << kernel->name();
    }
  }
}

TEST(DecodeKernelIdentity, RandomFlipsNeverDivergeInsideTheValidDomain) {
  // Random single-byte flips with checksums off: every kernel must
  // survive (no crash, ASan-clean), and whenever the scalar baseline
  // decodes to fully in-domain digits the others must reproduce them
  // exactly.
  for (uint64_t seed = 70; seed <= 77; ++seed) {
    Random rng(seed);
    SchemaPtr schema = RandomSchema(rng);
    CodecOptions options = RandomOptions(rng);
    options.checksum = false;
    auto codec = MakeAvqBlockCodec(schema, options);
    const std::string image = RandomBlock(*schema, *codec, rng, nullptr);

    for (int trial = 0; trial < 40; ++trial) {
      std::string mutated = image;
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));

      DecodeArena scalar_arena;
      BlockHeader h;
      const Status scalar_status =
          DecodeBlockToArena(*schema, Slice(mutated),
                             *FindDecodeKernel("scalar"), &scalar_arena, &h);
      const bool comparable =
          scalar_status.ok() &&
          RowsInDomain(scalar_arena, *schema, h.tuple_count);
      for (const DecodeKernel* kernel : AllDecodeKernels()) {
        if (!kernel->Available() ||
            std::strcmp(kernel->name(), "scalar") == 0) {
          continue;
        }
        DecodeArena arena;
        BlockHeader kh;
        const Status status =
            DecodeBlockToArena(*schema, Slice(mutated), *kernel, &arena, &kh);
        if (!comparable) continue;  // garbage domain: survival is enough
        ASSERT_TRUE(status.ok())
            << kernel->name() << " seed " << seed << " trial " << trial
            << ": " << status.ToString();
        EXPECT_EQ(0, std::memcmp(arena.digit_row(0),
                                 scalar_arena.digit_row(0),
                                 kh.tuple_count * schema->num_attributes() *
                                     sizeof(uint64_t)))
            << kernel->name() << " seed " << seed << " trial " << trial;
      }
    }
  }
}

// ---- arena behavior ----

TEST(DecodeArenaTest, SteadyStateDecodesWithoutGrowing) {
  Random rng(7);
  SchemaPtr schema = IntSchema({65536, 4096, 1u << 20});
  auto codec = MakeAvqBlockCodec(schema, CodecOptions{});
  const std::string image = RandomBlock(*schema, *codec, rng, nullptr);

  DecodeArena arena;
  BlockHeader header;
  ASSERT_TRUE(DecodeBlockToArena(*schema, Slice(image),
                                 SelectedDecodeKernel(), &arena, &header)
                  .ok());
  const DecodeArena::Stats warm = arena.stats();
  EXPECT_GT(warm.blocks_decoded, 0u);
  EXPECT_GT(warm.reserved_bytes, 0u);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(DecodeBlockToArena(*schema, Slice(image),
                                   SelectedDecodeKernel(), &arena, &header)
                    .ok());
  }
  const DecodeArena::Stats& after = arena.stats();
  EXPECT_EQ(after.grow_events, warm.grow_events)
      << "warm arena must not allocate";
  EXPECT_EQ(after.blocks_decoded, warm.blocks_decoded + 5);
  EXPECT_EQ(after.reserved_bytes, warm.reserved_bytes);
}

TEST(DecodeArenaTest, ThreadLocalArenaIsReusedAcrossDecodeBlockCalls) {
  Random rng(11);
  SchemaPtr schema = IntSchema({65536, 65536});
  auto codec = MakeAvqBlockCodec(schema, CodecOptions{});
  const std::string image = RandomBlock(*schema, *codec, rng, nullptr);

  ASSERT_TRUE(DecodeBlock(*schema, Slice(image)).ok());
  const uint64_t grows = DecodeArena::ThreadLocal().stats().grow_events;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(DecodeBlock(*schema, Slice(image)).ok());
  }
  EXPECT_EQ(DecodeArena::ThreadLocal().stats().grow_events, grows);
}

}  // namespace
}  // namespace avqdb
