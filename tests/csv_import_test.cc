#include "src/db/csv_import.h"

#include <gtest/gtest.h>

#include "src/schema/domain.h"
#include "src/schema/tuple.h"

namespace avqdb {
namespace {

TEST(CsvParse, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows.value()[2], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvParse, QuotedFields) {
  auto rows = ParseCsv("name,note\n\"Smith, Jo\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "Smith, Jo");
  EXPECT_EQ(rows.value()[1][1], "said \"hi\"");
}

TEST(CsvParse, QuotedNewlines) {
  auto rows = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "line1\nline2");
}

TEST(CsvParse, WindowsLineEndings) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows.value()[1][1], "2");
}

TEST(CsvParse, NoTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvParse, RejectsRaggedRows) {
  EXPECT_TRUE(ParseCsv("a,b\n1,2,3\n").status().IsCorruption());
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsv("a,b\n\"oops,2\n").status().IsCorruption());
}

TEST(CsvParse, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto rows = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[1][0], "1");
}

TEST(CsvImport, InfersIntegerAndCategoricalDomains) {
  auto rel = ImportCsvText(
      "city,temp,station\nberlin,-5,a1\nparis,12,b2\nberlin,30,a1\n");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  const Schema& schema = *rel->schema;
  EXPECT_EQ(schema.attribute(0).name, "city");
  EXPECT_EQ(schema.attribute(0).domain->kind(), DomainKind::kCategorical);
  EXPECT_EQ(schema.attribute(0).domain->cardinality(), 2u);
  EXPECT_EQ(schema.attribute(1).domain->kind(), DomainKind::kIntegerRange);
  auto* temp = static_cast<IntegerRangeDomain*>(
      schema.attribute(1).domain.get());
  EXPECT_EQ(temp->lo(), -5);
  EXPECT_EQ(temp->hi(), 30);
  ASSERT_EQ(rel->tuples.size(), 3u);
  // Rows round-trip through the inferred schema.
  auto row = DecodeTuple(schema, rel->tuples[1]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value()[0], Value("paris"));
  EXPECT_EQ(row.value()[1], Value(int64_t{12}));
  EXPECT_EQ(row.value()[2], Value("b2"));
}

TEST(CsvImport, MixedColumnFallsBackToCategorical) {
  auto rel = ImportCsvText("v\n1\ntwo\n3\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema->attribute(0).domain->kind(),
            DomainKind::kCategorical);
  EXPECT_EQ(rel->schema->attribute(0).domain->cardinality(), 3u);
}

TEST(CsvImport, HeaderlessNamesColumns) {
  CsvOptions options;
  options.has_header = false;
  auto rel = ImportCsvText("1,2\n3,4\n", options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema->attribute(0).name, "c0");
  EXPECT_EQ(rel->schema->attribute(1).name, "c1");
  EXPECT_EQ(rel->tuples.size(), 2u);
}

TEST(CsvImport, RejectsEmptyInputs) {
  EXPECT_TRUE(ImportCsvText("").status().IsInvalidArgument());
  EXPECT_TRUE(ImportCsvText("a,b\n").status().IsInvalidArgument());
}

TEST(CsvImport, MissingFileIsIOError) {
  EXPECT_TRUE(
      ImportCsvFile("/nonexistent/no.csv").status().IsIOError());
}

}  // namespace
}  // namespace avqdb
