#include "src/schema/value.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(Value, Kinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(int64_t{-7}).AsInt(), -7);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(Value, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value(), Value());
}

TEST(Value, OrderingWithinKind) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(Value, OrderingAcrossKinds) {
  EXPECT_LT(Value(), Value(int64_t{0}));       // null < int
  EXPECT_LT(Value(int64_t{999}), Value(""));  // int < string
}

TEST(Value, RowToString) {
  Row row = {Value("marketing"), Value(int64_t{12}), Value()};
  EXPECT_EQ(RowToString(row), "(\"marketing\", 12, NULL)");
  EXPECT_EQ(RowToString({}), "()");
}

}  // namespace
}  // namespace avqdb
