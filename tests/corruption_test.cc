// Failure injection: on-disk corruption must surface as
// Status::Corruption through every read path, never as wrong answers or
// crashes.

#include <gtest/gtest.h>

#include "src/avq/block_format.h"
#include "src/common/random.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

struct Fixture {
  Fixture() : device(512) {
    schema = testing::PaperShapeSchema();
    CodecOptions options;
    options.block_size = 512;
    table = Table::CreateAvq(schema, &device, options).value();
    auto tuples = testing::RandomTuples(*schema, 900, 1);
    std::sort(tuples.begin(), tuples.end(),
              [](const OrdinalTuple& a, const OrdinalTuple& b) {
                return CompareTuples(a, b) < 0;
              });
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    loaded = tuples;
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
  }

  // First data block id, discovered through the primary index.
  BlockId FirstDataBlock() {
    auto iter = table->primary_index().Begin().value();
    AVQDB_CHECK(iter.Valid(), "table is empty");
    return static_cast<BlockId>(iter.value());
  }

  MemBlockDevice device;
  SchemaPtr schema;
  std::unique_ptr<Table> table;
  std::vector<OrdinalTuple> loaded;
};

TEST(Corruption, ScanReportsCorruptDataBlock) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  // Smash a payload byte past the header.
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 3, 0xee).ok());
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(Corruption, QueriesReportCorruptDataBlock) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 1, 0xee).ok());
  QueryStats stats;
  auto result =
      ExecuteRangeSelect(*f.table, RangeQuery{1, 0, 15}, &stats);
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(Corruption, PointLookupReportsCorruption) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 2, 0xee).ok());
  // The smallest loaded tuple lives in the first block.
  auto contains = f.table->Contains(f.loaded.front());
  EXPECT_TRUE(contains.status().IsCorruption());
}

TEST(Corruption, HeaderMagicSmashDetectedWithoutChecksum) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  options.checksum = false;  // structural checks must still fire
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(table->Insert({1, 2, 3, 4, 5}).ok());
  auto iter = table->primary_index().Begin().value();
  const BlockId victim = static_cast<BlockId>(iter.value());
  ASSERT_TRUE(device.CorruptByte(victim, 0, 0x00).ok());
  EXPECT_TRUE(table->ScanAll().status().IsCorruption());
}

TEST(Corruption, RandomSingleByteFlipsNeverYieldWrongData) {
  // Property: for any single-byte corruption of any data block, a scan
  // either fails with Corruption or returns the exact original content
  // (flips in padding or in ignored bits may be harmless).
  Fixture f;
  Random rng(9);
  auto iter = f.table->primary_index().Begin().value();
  std::vector<BlockId> blocks;
  while (iter.Valid()) {
    blocks.push_back(static_cast<BlockId>(iter.value()));
    ASSERT_TRUE(iter.Next().ok());
  }
  for (int trial = 0; trial < 60; ++trial) {
    const BlockId victim = blocks[rng.Uniform(blocks.size())];
    const size_t offset = rng.Uniform(512);
    std::string original;
    ASSERT_TRUE(f.device.Read(victim, &original).ok());
    const uint8_t flipped =
        static_cast<uint8_t>(original[offset]) ^
        static_cast<uint8_t>(1u << rng.Uniform(8));
    ASSERT_TRUE(f.device.CorruptByte(victim, offset, flipped).ok());

    auto scan = f.table->ScanAll();
    if (scan.ok()) {
      EXPECT_EQ(scan.value(), f.loaded)
          << "block " << victim << " offset " << offset;
    } else {
      EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
    }
    // Restore for the next trial.
    ASSERT_TRUE(f.device.Write(victim, Slice(original)).ok());
  }
}

}  // namespace
}  // namespace avqdb
