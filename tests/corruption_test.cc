// Failure injection: on-disk corruption must surface as
// Status::Corruption through every read path, never as wrong answers or
// crashes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/avq/block_format.h"
#include "src/avq/relation_codec.h"
#include "src/common/coding.h"
#include "src/common/random.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/storage/fault_injection_device.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

struct Fixture {
  Fixture() : device(512) {
    schema = testing::PaperShapeSchema();
    CodecOptions options;
    options.block_size = 512;
    table = Table::CreateAvq(schema, &device, options).value();
    auto tuples = testing::RandomTuples(*schema, 900, 1);
    std::sort(tuples.begin(), tuples.end(),
              [](const OrdinalTuple& a, const OrdinalTuple& b) {
                return CompareTuples(a, b) < 0;
              });
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    loaded = tuples;
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
  }

  // First data block id, discovered through the primary index.
  BlockId FirstDataBlock() {
    auto iter = table->primary_index().Begin().value();
    AVQDB_CHECK(iter.Valid(), "table is empty");
    return static_cast<BlockId>(iter.value());
  }

  MemBlockDevice device;
  SchemaPtr schema;
  std::unique_ptr<Table> table;
  std::vector<OrdinalTuple> loaded;
};

TEST(Corruption, ScanReportsCorruptDataBlock) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  // Smash a payload byte past the header.
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 3, 0xee).ok());
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(Corruption, QueriesReportCorruptDataBlock) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 1, 0xee).ok());
  QueryStats stats;
  auto result =
      ExecuteRangeSelect(*f.table, RangeQuery{1, 0, 15}, &stats);
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(Corruption, PointLookupReportsCorruption) {
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  ASSERT_TRUE(f.device.CorruptByte(victim, kBlockHeaderSize + 2, 0xee).ok());
  // The smallest loaded tuple lives in the first block.
  auto contains = f.table->Contains(f.loaded.front());
  EXPECT_TRUE(contains.status().IsCorruption());
}

TEST(Corruption, HeaderMagicSmashDetectedWithoutChecksum) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  CodecOptions options;
  options.block_size = 512;
  options.checksum = false;  // structural checks must still fire
  auto table = Table::CreateAvq(schema, &device, options).value();
  ASSERT_TRUE(table->Insert({1, 2, 3, 4, 5}).ok());
  auto iter = table->primary_index().Begin().value();
  const BlockId victim = static_cast<BlockId>(iter.value());
  ASSERT_TRUE(device.CorruptByte(victim, 0, 0x00).ok());
  EXPECT_TRUE(table->ScanAll().status().IsCorruption());
}

TEST(Corruption, RandomSingleByteFlipsNeverYieldWrongData) {
  // Property: for any single-byte corruption of any data block, a scan
  // either fails with Corruption or returns the exact original content
  // (flips in padding or in ignored bits may be harmless).
  Fixture f;
  Random rng(9);
  auto iter = f.table->primary_index().Begin().value();
  std::vector<BlockId> blocks;
  while (iter.Valid()) {
    blocks.push_back(static_cast<BlockId>(iter.value()));
    ASSERT_TRUE(iter.Next().ok());
  }
  for (int trial = 0; trial < 60; ++trial) {
    const BlockId victim = blocks[rng.Uniform(blocks.size())];
    const size_t offset = rng.Uniform(512);
    std::string original;
    ASSERT_TRUE(f.device.Read(victim, &original).ok());
    const uint8_t flipped =
        static_cast<uint8_t>(original[offset]) ^
        static_cast<uint8_t>(1u << rng.Uniform(8));
    ASSERT_TRUE(f.device.CorruptByte(victim, offset, flipped).ok());

    auto scan = f.table->ScanAll();
    if (scan.ok()) {
      EXPECT_EQ(scan.value(), f.loaded)
          << "block " << victim << " offset " << offset;
    } else {
      EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
    }
    // Restore for the next trial.
    ASSERT_TRUE(f.device.Write(victim, Slice(original)).ok());
  }
}

TEST(Corruption, TornWriteSurfacesAsCorruptionOnRead) {
  // A torn block write (injected through the fault device) must be caught
  // by the block CRC on the next read, not returned as data.
  Fixture f;
  const BlockId victim = f.FirstDataBlock();
  std::string original;
  ASSERT_TRUE(f.device.Read(victim, &original).ok());

  FaultInjectionBlockDevice fault(&f.device);
  fault.TearWriteAt(1, /*keep_bytes=*/40);  // mid-payload tear
  EXPECT_TRUE(fault.Write(victim, Slice(original)).IsIOError());
  std::string torn;
  ASSERT_TRUE(fault.Read(victim, &torn).ok());
  // Rewriting the same content torn at byte 40 leaves the image
  // unchanged, so force a visible tear: rotate the original first.
  std::string rotated = original;
  std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
  fault.TearWriteAt(1, /*keep_bytes=*/40);
  EXPECT_TRUE(fault.Write(victim, Slice(rotated)).IsIOError());

  // Scanning through the torn image must report Corruption.
  Pager pager(&fault);
  auto read = pager.Read(victim);
  ASSERT_TRUE(read.ok());
  auto decoded = f.table->codec().DecodeBlock(Slice(read.value()));
  EXPECT_TRUE(decoded.status().IsCorruption())
      << decoded.status().ToString();
}

TEST(Corruption, InjectedBitFlipSurfacesAsCorruptionThroughScan) {
  // Silent media corruption: one read comes back with a single bit
  // flipped. The per-block CRC must turn that into Status::Corruption.
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice base(512);
  FaultInjectionBlockDevice fault(&base);
  CodecOptions options;
  options.block_size = 512;
  auto table = Table::CreateAvq(schema, &fault, options).value();
  auto tuples = testing::RandomTuples(*schema, 200, 7);
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  AVQDB_CHECK_OK(table->BulkLoad(tuples));

  // Every read that returns flipped payload data must either fail the
  // scan with Corruption or (for flips in padding) leave it intact.
  for (unsigned bit = 0; bit < 8; ++bit) {
    fault.FlipReadBitAt(1, kBlockHeaderSize + 3, bit);
    auto scan = table->ScanAll();
    if (scan.ok()) {
      EXPECT_EQ(scan.value(), tuples) << "bit " << bit;
    } else {
      EXPECT_TRUE(scan.status().IsCorruption())
          << "bit " << bit << ": " << scan.status().ToString();
    }
  }
  // With no fault scheduled the table reads back clean — the flip never
  // touched the stored block.
  fault.ClearFaults();
  EXPECT_EQ(table->ScanAll().value(), tuples);
}

// ---- Parallel DecodeAll under corruption ----
//
// The parallel decode path fans blocks out across the shared pool; a
// corrupt block must surface as a clean non-OK Status (never a crash,
// never wrong tuples), exactly as in the serial path.

struct ParallelFixture {
  explicit ParallelFixture(size_t parallelism) {
    schema = testing::PaperShapeSchema();
    CodecOptions options;
    options.block_size = 512;
    options.parallelism = parallelism;
    codec = std::make_unique<RelationCodec>(schema, options);
    auto tuples = testing::RandomTuples(*schema, 2000, 21);
    auto encoded = codec->Encode(tuples);
    AVQDB_CHECK_OK(encoded.status());
    blocks = std::move(encoded->blocks);
    original = codec->DecodeAll(blocks).value();
    AVQDB_CHECK(blocks.size() >= 4, "want several blocks");
  }

  SchemaPtr schema;
  std::unique_ptr<RelationCodec> codec;
  std::vector<std::string> blocks;
  std::vector<OrdinalTuple> original;
};

TEST(Corruption, ParallelDecodeAllDetectsTargetedHeaderFlips) {
  ParallelFixture f(/*parallelism=*/0);
  // Offsets whose corruption is always detectable: magic (0-1), variant
  // (2), tuple_count (4-5: the diff stream then under- or over-runs the
  // payload), payload_size (8-11) and CRC (12-15). rep_index (6-7) is
  // deliberately absent: the CRC covers only the payload, so a flipped
  // representative index can re-anchor the chain into a different but
  // still sorted relation — that class is caught at the table layer by
  // the primary-index cross-check, not by DecodeBlock.
  const size_t offsets[] = {0, 1, 2, 4, 5, 8, 9, 10, 11, 12, 13, 14, 15};
  for (size_t block_index : {size_t{0}, f.blocks.size() / 2,
                             f.blocks.size() - 1}) {
    for (size_t offset : offsets) {
      std::vector<std::string> corrupted = f.blocks;
      corrupted[block_index][offset] =
          static_cast<char>(corrupted[block_index][offset] ^ 0x40);
      auto decoded = f.codec->DecodeAll(corrupted);
      EXPECT_FALSE(decoded.ok())
          << "block " << block_index << " offset " << offset;
    }
  }
}

TEST(Corruption, ParallelDecodeAllDetectsPayloadFlips) {
  ParallelFixture f(/*parallelism=*/4);
  // Flip the representative image, a run-length count byte, a suffix
  // byte, and the last payload byte; CRC-32C catches each.
  for (size_t block_index : {size_t{0}, f.blocks.size() - 1}) {
    const std::string& block = f.blocks[block_index];
    const uint32_t payload_size = DecodeFixed32(
        reinterpret_cast<const uint8_t*>(block.data()) + 8);
    const size_t offsets[] = {
        kBlockHeaderSize,                       // first rep byte
        kBlockHeaderSize + 5,                   // count byte of diff 1
        kBlockHeaderSize + payload_size / 2,    // mid-payload
        kBlockHeaderSize + payload_size - 1};   // last payload byte
    for (size_t offset : offsets) {
      std::vector<std::string> corrupted = f.blocks;
      corrupted[block_index][offset] =
          static_cast<char>(corrupted[block_index][offset] ^ 0x01);
      auto decoded = f.codec->DecodeAll(corrupted);
      EXPECT_FALSE(decoded.ok())
          << "block " << block_index << " offset " << offset;
    }
  }
}

TEST(Corruption, ParallelDecodeReportsSameErrorAsSerial) {
  // The parallel path funnels shard failures through a lowest-index
  // filter, so the reported error must match the serial scan's.
  ParallelFixture serial(1);
  std::vector<std::string> corrupted = serial.blocks;
  corrupted[1][kBlockHeaderSize + 2] ^= 0x10;   // payload flip, block 1
  corrupted[3][0] = '\0';                       // magic smash, block 3
  auto serial_result = serial.codec->DecodeAll(corrupted);
  ASSERT_FALSE(serial_result.ok());
  for (size_t parallelism : {size_t{2}, size_t{7}, size_t{0}}) {
    CodecOptions options;
    options.block_size = 512;
    options.parallelism = parallelism;
    RelationCodec codec(serial.schema, options);
    auto parallel_result = codec.DecodeAll(corrupted);
    ASSERT_FALSE(parallel_result.ok()) << "parallelism=" << parallelism;
    EXPECT_EQ(parallel_result.status().ToString(),
              serial_result.status().ToString())
        << "parallelism=" << parallelism;
  }
}

TEST(Corruption, ParallelRandomFlipsNeverYieldWrongTuples) {
  // Property over the parallel path: any single-bit flip anywhere in any
  // block either fails with a Status or decodes to the exact original.
  ParallelFixture f(/*parallelism=*/0);
  Random rng(1234);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t block_index = rng.Uniform(f.blocks.size());
    size_t offset = rng.Uniform(f.blocks[block_index].size());
    // rep_index (6-7) flips can silently re-anchor the block (see the
    // targeted test above); exclude them from the raw-codec property.
    if (offset == 6 || offset == 7) offset = 4;
    std::vector<std::string> corrupted = f.blocks;
    corrupted[block_index][offset] = static_cast<char>(
        static_cast<uint8_t>(corrupted[block_index][offset]) ^
        static_cast<uint8_t>(1u << rng.Uniform(8)));
    auto decoded = f.codec->DecodeAll(corrupted);
    if (decoded.ok()) {
      EXPECT_EQ(*decoded, f.original)
          << "block " << block_index << " offset " << offset;
    }
  }
}

// ---- Hostile headers (adversarial, not accidental, corruption) ----
//
// A block whose header lies about its own shape must be rejected by the
// structural capacity check *before* the decoder sizes any allocation or
// walk from the attacker-controlled counts — even with checksums off, and
// on both the materializing and the streaming decode paths.

struct HostileFixture {
  HostileFixture() : device(512) {
    schema = testing::PaperShapeSchema();
    CodecOptions options;
    options.block_size = 512;
    options.checksum = false;  // the CRC must not be load-bearing
    table = Table::CreateAvq(schema, &device, options).value();
    auto tuples = testing::RandomTuples(*schema, 120, 77);
    std::sort(tuples.begin(), tuples.end(),
              [](const OrdinalTuple& a, const OrdinalTuple& b) {
                return CompareTuples(a, b) < 0;
              });
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
    loaded = tuples;
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
    victim =
        static_cast<BlockId>(table->primary_index().Begin().value().value());
  }

  // Overwrites the little-endian u16 at `offset` of the victim's header.
  void SmashU16(size_t offset, uint16_t value) {
    AVQDB_CHECK_OK(device.CorruptByte(victim, offset,
                                      static_cast<uint8_t>(value & 0xff)));
    AVQDB_CHECK_OK(
        device.CorruptByte(victim, offset + 1,
                           static_cast<uint8_t>((value >> 8) & 0xff)));
  }
  void SmashU32(size_t offset, uint32_t value) {
    for (size_t b = 0; b < 4; ++b) {
      AVQDB_CHECK_OK(device.CorruptByte(
          victim, offset + b, static_cast<uint8_t>((value >> (8 * b)))));
    }
  }

  MemBlockDevice device;
  SchemaPtr schema;
  std::unique_ptr<Table> table;
  std::vector<OrdinalTuple> loaded;
  BlockId victim = kInvalidBlockId;
};

TEST(HostileBlock, InflatedTupleCountRejectedBeforeAllocation) {
  HostileFixture f;
  // Claim the maximum tuple count a u16 can carry; the ~500-byte payload
  // cannot possibly hold 65534 differences even at one byte each.
  f.SmashU16(4, 0xffff);
  auto scan = f.table->ScanAll();
  ASSERT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();

  // The streaming (cursor) path runs the same capacity check.
  auto contains = f.table->Contains(f.loaded.front());
  EXPECT_TRUE(contains.status().IsCorruption())
      << contains.status().ToString();
}

TEST(HostileBlock, PayloadTooSmallForRepresentativeRejected) {
  HostileFixture f;
  // A payload of 2 bytes cannot hold one m-byte representative image.
  f.SmashU32(8, 2);
  f.SmashU16(4, 1);  // even with a single claimed tuple
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(HostileBlock, TupleCountJustOverCapacityRejected) {
  HostileFixture f;
  // Read the genuine header to compute the exact RLE capacity bound,
  // then claim one tuple more than the payload can hold.
  std::string raw;
  ASSERT_TRUE(f.device.Read(f.victim, &raw).ok());
  auto header = BlockHeader::DecodeFrom(Slice(raw)).value();
  const size_t m = 5;  // PaperShapeSchema: five one-byte digits
  const uint64_t capacity = 1 + (header.payload_size - m);  // 1-byte diffs
  ASSERT_LT(capacity + 1, 0xffffu);
  f.SmashU16(4, static_cast<uint16_t>(capacity + 1));
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(HostileBlock, PayloadSizeBeyondBlockRejected) {
  HostileFixture f;
  // payload_size pointing past the physical block must not drive an
  // out-of-bounds walk.
  f.SmashU32(8, 0x7fffffffu);
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(HostileBlock, RepIndexBeyondTupleCountRejected) {
  HostileFixture f;
  f.SmashU16(6, 0xfff0);  // representative position outside the block
  auto scan = f.table->ScanAll();
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

}  // namespace
}  // namespace avqdb
