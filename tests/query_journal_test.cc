// QueryJournal: ring semantics, slow-query marking, threshold parsing,
// and the TSan-hammered concurrent writer/reader contract — a torn or
// mid-write slot must be skipped, never surfaced.

#include "src/obs/query_journal.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace avqdb::obs {
namespace {

QueryJournal::Record MakeRecord(uint64_t rid, const char* table = "orders") {
  QueryJournal::Record r;
  r.request_id = rid;
  r.session_id = 7;
  r.start_unix_us = 1000 + rid;
  r.tuples = rid * 3;
  r.queue_us = rid;
  r.exec_us = rid * 2;
  r.send_us = rid % 5;
  r.wire_status = 0;
  std::snprintf(r.table, sizeof(r.table), "%s", table);
  return r;
}

TEST(QueryJournal, EmptyTailIsEmpty) {
  QueryJournal journal(8);
  EXPECT_TRUE(journal.Tail().empty());
  EXPECT_EQ(journal.total_appends(), 0u);
}

TEST(QueryJournal, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(QueryJournal(5).capacity(), 8u);
  EXPECT_EQ(QueryJournal(8).capacity(), 8u);
  EXPECT_EQ(QueryJournal(0).capacity(), 2u);
}

TEST(QueryJournal, TailReturnsRecordsOldestFirst) {
  QueryJournal journal(8);
  journal.SetSlowThresholdMicros(0);
  for (uint64_t rid = 1; rid <= 5; ++rid) journal.Append(MakeRecord(rid));
  std::vector<QueryJournal::Record> tail = journal.Tail();
  ASSERT_EQ(tail.size(), 5u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].request_id, i + 1);
    EXPECT_EQ(tail[i].tuples, (i + 1) * 3);
    EXPECT_EQ(tail[i].table_name(), "orders");
  }
}

TEST(QueryJournal, WrapKeepsOnlyTheNewestCapacityRecords) {
  QueryJournal journal(4);
  journal.SetSlowThresholdMicros(0);
  for (uint64_t rid = 1; rid <= 11; ++rid) journal.Append(MakeRecord(rid));
  EXPECT_EQ(journal.total_appends(), 11u);
  std::vector<QueryJournal::Record> tail = journal.Tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().request_id, 8u);
  EXPECT_EQ(tail.back().request_id, 11u);
}

TEST(QueryJournal, TailMaxBoundsTheResult) {
  QueryJournal journal(16);
  journal.SetSlowThresholdMicros(0);
  for (uint64_t rid = 1; rid <= 10; ++rid) journal.Append(MakeRecord(rid));
  std::vector<QueryJournal::Record> tail = journal.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().request_id, 8u);
  EXPECT_EQ(tail.back().request_id, 10u);
}

TEST(QueryJournal, LongTableNamesAreTruncatedNotOverrun) {
  QueryJournal journal(4);
  journal.SetSlowThresholdMicros(0);
  const std::string long_name(100, 'x');
  QueryJournal::Record r = MakeRecord(1);
  std::memset(r.table, 0, sizeof(r.table));
  std::memcpy(r.table, long_name.data(),
              QueryJournal::Record::kTableBytes);
  journal.Append(r);
  std::vector<QueryJournal::Record> tail = journal.Tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].table_name(),
            long_name.substr(0, QueryJournal::Record::kTableBytes));
}

TEST(QueryJournal, SlowThresholdMarksAndCounts) {
  QueryJournal journal(8);
  journal.SetSlowThresholdMicros(100);
  QueryJournal::Record fast = MakeRecord(1);
  fast.queue_us = 10;
  fast.exec_us = 20;
  fast.send_us = 30;
  EXPECT_FALSE(journal.Append(fast));

  QueryJournal::Record slow = MakeRecord(2);
  slow.queue_us = 50;
  slow.exec_us = 40;
  slow.send_us = 10;  // total exactly at the threshold counts as slow
  EXPECT_TRUE(journal.Append(slow));

  std::vector<QueryJournal::Record> tail = journal.Tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].flags & QueryJournal::kFlagSlow, 0);
  EXPECT_NE(tail[1].flags & QueryJournal::kFlagSlow, 0);
}

TEST(QueryJournal, ZeroThresholdDisablesSlowMarking) {
  QueryJournal journal(8);
  journal.SetSlowThresholdMicros(0);
  QueryJournal::Record r = MakeRecord(1);
  r.exec_us = 1'000'000'000;
  EXPECT_FALSE(journal.Append(r));
}

TEST(QueryJournal, ParseSlowThresholdMs) {
  const uint64_t fallback = 1000 * 1000;
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs(nullptr, fallback), fallback);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("", fallback), fallback);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("250", fallback), 250'000u);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("0", fallback), 0u);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("12abc", fallback), fallback);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("abc", fallback), fallback);
  EXPECT_EQ(QueryJournal::ParseSlowThresholdMs("-5", fallback), fallback);
}

TEST(QueryJournal, FormatJournalRendersOneLinePerRecord) {
  QueryJournal journal(8);
  journal.SetSlowThresholdMicros(0);
  journal.Append(MakeRecord(1));
  journal.Append(MakeRecord(2));
  const std::string text = FormatJournal(journal.Tail());
  // Header plus one line per record.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("orders"), std::string::npos);
}

// The TSan hammer: concurrent writers fill derived fields a reader can
// validate, so any torn read surfaces as an inconsistent record even
// without the sanitizer.
TEST(QueryJournal, ConcurrentWritersAndReadersSeeOnlyConsistentRecords) {
  QueryJournal journal(64);
  journal.SetSlowThresholdMicros(0);
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 5000;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};

  auto validate = [&](const QueryJournal::Record& r) {
    // Derived-field invariants every committed record satisfies.
    if (r.tuples != r.request_id * 3 || r.exec_us != r.request_id * 2 ||
        r.queue_us != r.request_id ||
        r.start_unix_us != 1000 + r.request_id ||
        r.table_name() != "orders") {
      inconsistent.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&journal, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        journal.Append(
            MakeRecord(static_cast<uint64_t>(w) * kPerWriter + i + 1));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&journal, &stop, &validate] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& record : journal.Tail()) validate(record);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(journal.total_appends(), kWriters * kPerWriter);
  // After the dust settles a full tail read returns exactly capacity
  // records, all consistent.
  std::vector<QueryJournal::Record> tail = journal.Tail();
  EXPECT_EQ(tail.size(), journal.capacity());
  for (const auto& record : tail) validate(record);
  EXPECT_EQ(inconsistent.load(), 0u);
}

}  // namespace
}  // namespace avqdb::obs
