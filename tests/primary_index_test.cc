#include "src/index/primary_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace avqdb {
namespace {

struct Fixture {
  Fixture() : device(256), pager(&device) {
    schema = testing::PaperShapeSchema();
    index = PrimaryIndex::Create(&pager, schema).value();
  }
  MemBlockDevice device;
  Pager pager;
  SchemaPtr schema;
  std::unique_ptr<PrimaryIndex> index;
};

TEST(PrimaryIndex, EmptyIndex) {
  Fixture f;
  EXPECT_TRUE(f.index->FindBlock({0, 0, 0, 0, 0}).status().IsNotFound());
  EXPECT_EQ(f.index->num_blocks_indexed(), 0u);
}

TEST(PrimaryIndex, FindBlockUsesFloorSemantics) {
  Fixture f;
  // Blocks keyed by their minimum tuples.
  ASSERT_TRUE(f.index->Insert({1, 0, 0, 0, 0}, 10).ok());
  ASSERT_TRUE(f.index->Insert({3, 8, 0, 0, 0}, 11).ok());
  ASSERT_TRUE(f.index->Insert({5, 0, 0, 0, 0}, 12).ok());

  // Exact minimum.
  EXPECT_EQ(f.index->FindBlock({1, 0, 0, 0, 0}).value(), 10u);
  // Inside the first block's range.
  EXPECT_EQ(f.index->FindBlock({2, 15, 63, 63, 63}).value(), 10u);
  // Inside the second.
  EXPECT_EQ(f.index->FindBlock({4, 0, 0, 0, 0}).value(), 11u);
  // Past everything: last block.
  EXPECT_EQ(f.index->FindBlock({7, 15, 63, 63, 63}).value(), 12u);
  // Before everything: clamps to the first block (insertion target).
  EXPECT_EQ(f.index->FindBlock({0, 0, 0, 0, 0}).value(), 10u);
}

TEST(PrimaryIndex, RekeyMovesBlockBoundary) {
  Fixture f;
  ASSERT_TRUE(f.index->Insert({2, 0, 0, 0, 0}, 20).ok());
  ASSERT_TRUE(f.index->Rekey({2, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, 20).ok());
  EXPECT_EQ(f.index->FindBlock({1, 5, 0, 0, 0}).value(), 20u);
  // Rekey to the identical tuple is a no-op.
  ASSERT_TRUE(f.index->Rekey({1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}, 20).ok());
  EXPECT_EQ(f.index->num_blocks_indexed(), 1u);
}

TEST(PrimaryIndex, DeleteRemovesBlock) {
  Fixture f;
  ASSERT_TRUE(f.index->Insert({1, 0, 0, 0, 0}, 10).ok());
  ASSERT_TRUE(f.index->Delete({1, 0, 0, 0, 0}).ok());
  EXPECT_TRUE(f.index->FindBlock({1, 0, 0, 0, 0}).status().IsNotFound());
  EXPECT_TRUE(f.index->Delete({1, 0, 0, 0, 0}).IsNotFound());
}

TEST(PrimaryIndex, RejectsInvalidTuples) {
  Fixture f;
  EXPECT_TRUE(f.index->Insert({9, 0, 0, 0, 0}, 1).IsOutOfRange());
  EXPECT_TRUE(f.index->Insert({0, 0}, 1).IsInvalidArgument());
}

TEST(PrimaryIndex, SeekBlockIteratesInPhiOrder) {
  Fixture f;
  ASSERT_TRUE(f.index->Insert({1, 0, 0, 0, 0}, 10).ok());
  ASSERT_TRUE(f.index->Insert({3, 0, 0, 0, 0}, 11).ok());
  ASSERT_TRUE(f.index->Insert({5, 0, 0, 0, 0}, 12).ok());
  auto iter = f.index->SeekBlock({3, 2, 0, 0, 0});
  ASSERT_TRUE(iter.ok());
  std::vector<uint64_t> blocks;
  while (iter.value().Valid()) {
    blocks.push_back(iter.value().value());
    ASSERT_TRUE(iter.value().Next().ok());
  }
  EXPECT_EQ(blocks, (std::vector<uint64_t>{11, 12}));
  // Key decoding recovers the block minimum.
  auto again = f.index->SeekBlock({1, 0, 0, 0, 0});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(f.index->DecodeKey(again.value().key()).value(),
            (OrdinalTuple{1, 0, 0, 0, 0}));
}

TEST(PrimaryIndex, ManyBlocksStressWithMultiByteDigits) {
  MemBlockDevice device(512);
  Pager pager(&device);
  auto schema = testing::IntSchema({300, 70000, 64});
  auto index = PrimaryIndex::Create(&pager, schema).value();
  // Digit widths 2 + 3 + 1: six-byte keys. All 500 tuples are distinct.
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(index
                    ->Insert({i % 300, i * 17 % 70000, i % 64},
                             static_cast<BlockId>(i))
                    .ok())
        << i;
  }
  EXPECT_EQ(index->num_blocks_indexed(), 500u);
  EXPECT_GT(index->num_index_nodes(), 1u);
}

}  // namespace
}  // namespace avqdb
