// FaultInjectionBlockDevice unit tests: scheduled read/write faults,
// torn writes, bit flips, the Sync()/Crash() unsynced-loss model, and the
// pager's bounded retry on transient errors.

#include "src/storage/fault_injection_device.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "src/storage/block_device.h"
#include "src/storage/pager.h"

namespace avqdb {
namespace {

// Slice over a string literal (Slice has no const char* constructor).
inline Slice Str(std::string_view s) { return Slice(s); }

class FaultDeviceTest : public ::testing::Test {
 protected:
  FaultDeviceTest() : base_(64), fault_(&base_) {}

  BlockId AllocateWritten(const std::string& content) {
    BlockId id = fault_.Allocate().value();
    AVQDB_CHECK_OK(fault_.Write(id, Slice(content)));
    return id;
  }

  std::string ReadAll(const BlockDevice& device, BlockId id) {
    std::string out;
    AVQDB_CHECK_OK(device.Read(id, &out));
    return out;
  }

  MemBlockDevice base_;
  FaultInjectionBlockDevice fault_;
};

TEST_F(FaultDeviceTest, PassThroughReadWrite) {
  const BlockId id = AllocateWritten("hello");
  std::string out;
  ASSERT_TRUE(fault_.Read(id, &out).ok());
  EXPECT_EQ(out.substr(0, 5), "hello");
  EXPECT_EQ(fault_.reads(), 1u);
  EXPECT_EQ(fault_.writes(), 1u);
}

TEST_F(FaultDeviceTest, WritesAreInvisibleToBaseUntilSync) {
  const BlockId id = AllocateWritten("buffered");
  // The base still holds the allocation-time zeros.
  EXPECT_EQ(ReadAll(base_, id), std::string(64, '\0'));
  // But reads through the wrapper see the buffered content.
  EXPECT_EQ(ReadAll(fault_, id).substr(0, 8), "buffered");
  ASSERT_TRUE(fault_.Sync().ok());
  EXPECT_EQ(ReadAll(base_, id).substr(0, 8), "buffered");
}

TEST_F(FaultDeviceTest, CrashDropsUnsyncedWrites) {
  const BlockId id = AllocateWritten("first");
  ASSERT_TRUE(fault_.Sync().ok());
  ASSERT_TRUE(fault_.Write(id, Str("second")).ok());
  fault_.Crash();
  // All operations fail while crashed.
  std::string out;
  EXPECT_TRUE(fault_.Read(id, &out).IsIOError());
  EXPECT_TRUE(fault_.Write(id, Str("x")).IsIOError());
  EXPECT_TRUE(fault_.Sync().IsIOError());
  // The base holds exactly the last-synced image.
  EXPECT_EQ(ReadAll(base_, id).substr(0, 5), "first");
  fault_.Recover();
  EXPECT_EQ(ReadAll(fault_, id).substr(0, 5), "first");
}

TEST_F(FaultDeviceTest, FailReadAtPermanentAndTransient) {
  const BlockId id = AllocateWritten("data");
  fault_.FailReadAt(2);
  std::string out;
  EXPECT_TRUE(fault_.Read(id, &out).ok());
  EXPECT_TRUE(fault_.Read(id, &out).IsIOError());
  EXPECT_TRUE(fault_.Read(id, &out).ok());  // one-shot

  fault_.FailReadAt(1, /*transient=*/true);
  EXPECT_TRUE(fault_.Read(id, &out).IsUnavailable());
  EXPECT_TRUE(fault_.Read(id, &out).ok());
}

TEST_F(FaultDeviceTest, StickyFaultKeepsFailing) {
  const BlockId id = AllocateWritten("data");
  fault_.FailReadAt(1, /*transient=*/false, /*sticky=*/true);
  std::string out;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fault_.Read(id, &out).IsIOError()) << i;
  }
  fault_.ClearFaults();
  EXPECT_TRUE(fault_.Read(id, &out).ok());
}

TEST_F(FaultDeviceTest, FailWriteAt) {
  const BlockId id = AllocateWritten("keep");
  fault_.FailWriteAt(1);
  EXPECT_TRUE(fault_.Write(id, Str("lost")).IsIOError());
  EXPECT_EQ(ReadAll(fault_, id).substr(0, 4), "keep");
  EXPECT_TRUE(fault_.Write(id, Str("next")).ok());
}

TEST_F(FaultDeviceTest, TornWritePersistsPrefixOnly) {
  const BlockId id = AllocateWritten("AAAAAAAA");
  ASSERT_TRUE(fault_.Sync().ok());
  fault_.TearWriteAt(1, /*keep_bytes=*/3);
  EXPECT_TRUE(fault_.Write(id, Str("BBBBBBBB")).IsIOError());
  // First 3 bytes of the new write, tail of the old content.
  EXPECT_EQ(ReadAll(fault_, id).substr(0, 8), "BBBAAAAA");
}

TEST_F(FaultDeviceTest, BitFlipCorruptsOneReadSilently) {
  const BlockId id = AllocateWritten("flip");
  fault_.FlipReadBitAt(1, /*offset=*/0, /*bit=*/1);
  std::string out;
  ASSERT_TRUE(fault_.Read(id, &out).ok());
  EXPECT_EQ(out[0], 'f' ^ 0x2);
  // The stored block is intact; the next read is clean.
  ASSERT_TRUE(fault_.Read(id, &out).ok());
  EXPECT_EQ(out[0], 'f');
}

TEST_F(FaultDeviceTest, CrashDuringSyncFlushesPrefixAndTearsNext) {
  const BlockId a = AllocateWritten("aaaa");
  const BlockId b = AllocateWritten("bbbb");
  const BlockId c = AllocateWritten("cccc");
  ASSERT_TRUE(fault_.Sync().ok());
  ASSERT_TRUE(fault_.Write(a, Str("AAAA")).ok());
  ASSERT_TRUE(fault_.Write(b, Str("BBBB")).ok());
  ASSERT_TRUE(fault_.Write(c, Str("CCCC")).ok());
  fault_.CrashDuringSync(/*nth=*/1, /*after_blocks=*/1, /*torn_bytes=*/2);
  EXPECT_TRUE(fault_.Sync().IsIOError());
  EXPECT_TRUE(fault_.crashed());
  // Buffered blocks flush in id order: a lands whole, b lands torn, c is
  // lost entirely.
  EXPECT_EQ(ReadAll(base_, a).substr(0, 4), "AAAA");
  EXPECT_EQ(ReadAll(base_, b).substr(0, 4), "BBbb");
  EXPECT_EQ(ReadAll(base_, c).substr(0, 4), "cccc");
}

TEST_F(FaultDeviceTest, WriteValidatesAgainstBaseContract) {
  EXPECT_TRUE(fault_.Write(99, Str("x")).IsInvalidArgument());
  const BlockId id = fault_.Allocate().value();
  EXPECT_TRUE(fault_.Write(id, Slice(std::string(65, 'x')))
                  .IsInvalidArgument());
}

TEST_F(FaultDeviceTest, PagerRetriesTransientReads) {
  const BlockId id = AllocateWritten("retry me");
  ASSERT_TRUE(fault_.Sync().ok());
  Pager pager(&fault_);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_us = 1;
  pager.SetRetryPolicy(policy);

  fault_.FailReadAt(1, /*transient=*/true);
  auto read = pager.Read(id);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().substr(0, 8), "retry me");
  EXPECT_EQ(pager.stats().read_retries, 1u);

  // A sticky transient fault exhausts the retry budget.
  fault_.FailReadAt(1, /*transient=*/true, /*sticky=*/true);
  EXPECT_TRUE(pager.Read(id).status().IsUnavailable());
  EXPECT_EQ(pager.stats().read_retries, 3u);

  // Permanent errors are not retried.
  fault_.ClearFaults();
  fault_.FailReadAt(1, /*transient=*/false);
  EXPECT_TRUE(pager.Read(id).status().IsIOError());
  EXPECT_EQ(pager.stats().read_retries, 3u);
}

}  // namespace
}  // namespace avqdb
