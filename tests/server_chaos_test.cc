// Network-fault soak + session lifecycle suite (ctest label: chaos).
//
// The soak drives one live server through hundreds of seeded fault
// schedules (FaultInjectionSocket on the client side, and on the
// server's accepted sockets for a third of the schedules) while a
// RetryingClient runs a mixed query+mutation workload with retries on.
// Invariants after every schedule and at the end:
//   - no acknowledged mutation is ever lost,
//   - no batch is ever applied twice (retried MUTATEs dedup by token),
//   - an ambiguous outcome (retry budget exhausted mid-command) is
//     resolved by replaying the SAME token on a clean connection, which
//     must return the original commit sequence if the batch committed,
//   - the server still serves a clean connection after every schedule.
// The final state is checked the ingest_snapshot_test way: the acked
// ops folded in commit-sequence order must equal a SnapshotScan.
//
// Seeds rotate like the crash loop's: AVQDB_CHAOS_SEED overrides the
// base (tools/chaos_loop.sh), AVQDB_CHAOS_SCHEDULES overrides the
// schedule count (the sanitizer wrapper runs fewer, slower schedules).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/db/write_ahead_table.h"
#include "src/db/write_batch.h"
#include "src/obs/metric_names.h"
#include "src/server/chaos_socket.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/retry_client.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using avqdb::server::testing::CounterValue;
using avqdb::server::testing::RangeOn;
using avqdb::server::testing::RawConn;
using avqdb::server::testing::ServerFixture;

struct TupleLess {
  bool operator()(const OrdinalTuple& a, const OrdinalTuple& b) const {
    return CompareTuples(a, b) < 0;
  }
};
using TupleSet = std::set<OrdinalTuple, TupleLess>;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

// Fixture domains are {8, 16, 64, 64, 64}; the counter walks the tuple
// space deterministically so every insert targets a never-seen tuple.
OrdinalTuple TupleFromCounter(uint64_t c) {
  return OrdinalTuple{c % 8, (c / 8) % 16, (c / 128) % 64, (c / 8192) % 64,
                      (c / 524288) % 64};
}

OrdinalTuple NextFreshTuple(uint64_t* counter, const TupleSet& seen) {
  while (true) {
    OrdinalTuple t = TupleFromCounter((*counter)++);
    if (!seen.contains(t)) return t;
  }
}

// Deterministic idempotency token (the soak must replay exactly from
// one seed, so tokens can't come from the entropy source).
MutationToken TokenFor(uint64_t hi, uint64_t lo) {
  MutationToken token{};
  std::memcpy(token.data(), &hi, sizeof(hi));
  std::memcpy(token.data() + sizeof(hi), &lo, sizeof(lo));
  return token;
}

// The ambiguous transport class a retry policy works on — anything else
// coming back from a chaotic call is a server verdict and means the
// exactly-once contract broke (e.g. AlreadyExists = double apply).
bool IsTransportExhaustion(const Status& status) {
  return status.IsUnavailable() || status.IsIOError() ||
         status.IsDeadlineExceeded() || status.IsNotFound();
}

struct AckedOp {
  uint64_t seq = 0;
  bool is_delete = false;
  OrdinalTuple tuple;
};

TEST(ServerChaos, SoakMixedWorkloadUnderFaultSchedules) {
  const uint64_t base_seed = EnvOr("AVQDB_CHAOS_SEED", 0xC4A05EEDull);
  const uint64_t schedules = EnvOr("AVQDB_CHAOS_SCHEDULES", 500);

  // Server-side chaos: the accept hook installs a schedule on the
  // accepted socket whenever this is nonzero. It is set only while the
  // chaotic client of a schedule connects, so liveness checks and
  // reconciliation always ride clean sessions.
  std::atomic<uint64_t> server_seed{0};

  testing::FixtureOptions options;
  options.num_tuples = 500;
  options.server.handshake_timeout_ms = 5000;  // never trips on 25ms stalls
  options.server.accept_hook = [&server_seed](int fd) {
    const uint64_t seed = server_seed.load();
    if (seed != 0) {
      InstallSocketFault(fd, std::make_shared<FaultInjectionSocket>(
                                 ChaosScheduleOptions::FromSeed(seed)));
    }
  };
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());

  // Clean liveness session, connected before any fault is armed.
  auto clean = fixture.Connect();
  ASSERT_NE(clean, nullptr);

  TupleSet model(fixture.tuples().begin(), fixture.tuples().end());
  TupleSet generated = model;  // everything ever handed to an insert
  std::vector<AckedOp> acked;
  std::set<uint64_t> acked_seqs;
  std::vector<OrdinalTuple> deletable;  // committed inserts not yet deleted
  uint64_t tuple_counter = 1;
  uint64_t ambiguous = 0;

  for (uint64_t i = 0; i < schedules; ++i) {
    const uint64_t seed = base_seed + i * 7919;

    // Every third schedule also faults the server's end of the socket.
    if (i % 3 == 2) server_seed.store(seed ^ 0x5EEDF00Dull);

    // Each (re)connect of this schedule gets a distinct sub-schedule, so
    // a cut-heavy seed doesn't doom every retry attempt identically.
    std::atomic<uint64_t> attempt{0};
    RetryOptions retry_options;
    retry_options.max_attempts = 6;
    retry_options.initial_backoff_ms = 1;
    retry_options.max_backoff_ms = 16;
    retry_options.overall_deadline_ms = 15000;
    retry_options.jitter_seed = seed;
    retry_options.client.io_timeout_ms = 2000;
    retry_options.client.connect_hook = [seed, &attempt](int fd) {
      const uint64_t sub = seed + 0x9E3779B9ull * attempt.fetch_add(1);
      InstallSocketFault(fd, std::make_shared<FaultInjectionSocket>(
                                 ChaosScheduleOptions::FromSeed(sub)));
    };
    RetryingClient chaotic("127.0.0.1", fixture.port(), retry_options);

    // Query leg: the state is fully resolved between schedules, so an
    // answer that survives the faults must match the model exactly.
    {
      QueryRequest query;
      query.table = "orders";
      query.query = RangeOn(0, i % 8, i % 8);
      auto rows = chaotic.Query(query);
      if (rows.ok()) {
        TupleSet expected;
        for (const OrdinalTuple& t : model) {
          if (t[0] == i % 8) expected.insert(t);
        }
        EXPECT_EQ(TupleSet(rows->begin(), rows->end()), expected)
            << "schedule " << i << " (seed " << seed
            << "): query result diverged from the committed state";
      } else {
        ASSERT_TRUE(IsTransportExhaustion(rows.status()))
            << "schedule " << i << " (seed " << seed
            << "): query failed with a non-transport verdict: "
            << rows.status().ToString();
      }
    }

    // Mutation leg: mostly fresh inserts, every third schedule deletes
    // a previously committed insert instead.
    MutateRequest request;
    request.table = "orders";
    request.has_token = true;
    request.token = TokenFor(base_seed, i + 1);
    bool is_delete = false;
    OrdinalTuple target;
    if (i % 3 == 1 && !deletable.empty()) {
      is_delete = true;
      target = deletable.front();
      deletable.erase(deletable.begin());
      request.batch.Delete(target);
    } else {
      target = NextFreshTuple(&tuple_counter, generated);
      generated.insert(target);
      request.batch.Insert(target);
    }

    auto seq = chaotic.Mutate(request);
    if (!seq.ok()) {
      // Ambiguous: the batch may or may not have committed. Replay the
      // SAME token on a clean connection — the dedup window must answer
      // with the original sequence if it did, or commit it now if not.
      // Either way the op's fate becomes deterministic.
      ASSERT_TRUE(IsTransportExhaustion(seq.status()))
          << "schedule " << i << " (seed " << seed
          << "): mutation failed with a non-transport verdict: "
          << seq.status().ToString();
      ++ambiguous;
      server_seed.store(0);
      auto reconcile = fixture.Connect();
      ASSERT_NE(reconcile, nullptr);
      auto replayed = reconcile->Mutate(request);
      ASSERT_TRUE(replayed.ok())
          << "schedule " << i << " (seed " << seed
          << "): token replay on a clean connection failed: "
          << replayed.status().ToString();
      seq = replayed;
    }
    server_seed.store(0);

    ASSERT_TRUE(acked_seqs.insert(*seq).second)
        << "schedule " << i << " (seed " << seed << "): commit sequence "
        << *seq << " was handed out twice";
    acked.push_back(AckedOp{*seq, is_delete, target});
    if (is_delete) {
      ASSERT_EQ(model.erase(target), 1u);
    } else {
      ASSERT_TRUE(model.insert(target).second);
      deletable.push_back(target);
    }

    // The server must keep serving clean sessions after every schedule.
    Status alive = clean->Ping();
    ASSERT_TRUE(alive.ok()) << "schedule " << i << " (seed " << seed
                            << "): server unresponsive after the schedule: "
                            << alive.ToString();

    if ((i + 1) % 50 == 0) {
      FlushRequest flush;
      flush.table = "orders";
      auto flushed = clean->Flush(flush);
      ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
    }
  }

  // Exactly-once, end to end: fold the acked history in commit order
  // over the seed data; a lost ack or double apply breaks the fold or
  // the final comparison against a snapshot scan.
  std::sort(acked.begin(), acked.end(),
            [](const AckedOp& a, const AckedOp& b) { return a.seq < b.seq; });
  TupleSet folded(fixture.tuples().begin(), fixture.tuples().end());
  for (const AckedOp& op : acked) {
    if (op.is_delete) {
      ASSERT_EQ(folded.erase(op.tuple), 1u)
          << "acked delete at seq " << op.seq << " had nothing to delete";
    } else {
      ASSERT_TRUE(folded.insert(op.tuple).second)
          << "acked insert at seq " << op.seq << " was applied twice";
    }
  }
  FlushRequest flush;
  flush.table = "orders";
  ASSERT_TRUE(clean->Flush(flush).ok());
  auto ingest = fixture.db().GetIngest("orders");
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  auto scanned = (*ingest)->SnapshotScan();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(TupleSet(scanned->begin(), scanned->end()), folded)
      << "final table state diverged from the acked history ("
      << scanned->size() << " scanned vs " << folded.size() << " folded)";

  // The workload must actually have exercised the ambiguous path and
  // the dedup window on a full-size run (statistically certain with
  // ~half the schedules cutting the connection).
  if (schedules >= 200) {
    EXPECT_GT(ambiguous, 0u) << "no schedule ever ended ambiguous — the "
                                "fault schedules are not biting";
  }
}

TEST(ServerChaos, RetriedMutationDedupsByTokenOverTheWire) {
  testing::FixtureOptions options;
  options.num_tuples = 500;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  MutateRequest request;
  request.table = "orders";
  request.has_token = true;
  request.token = TokenFor(0xABCDull, 0x1234ull);
  uint64_t counter = 1;
  TupleSet base(fixture.tuples().begin(), fixture.tuples().end());
  request.batch.Insert(NextFreshTuple(&counter, base));

  const uint64_t hits_before = CounterValue(obs::kWriteDedupHits);
  auto first = client->Mutate(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // A byte-identical resend (same token) must answer with the original
  // sequence — not AlreadyExists, not a new commit.
  auto second = client->Mutate(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, *first);
  EXPECT_GE(CounterValue(obs::kWriteDedupHits), hits_before + 1);

  // And from a different session too (a reconnecting retry).
  auto other = fixture.Connect();
  ASSERT_NE(other, nullptr);
  auto third = other->Mutate(request);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(*third, *first);
}

TEST(ServerChaos, IdleSessionIsReaped) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  options.server.idle_timeout_ms = 100;
  ServerFixture fixture(options);

  const uint64_t reaped_before = CounterValue(obs::kServerSessionsIdleReaped);
  auto conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();
  // Send nothing: the server must reap the session with a typed ERROR
  // and a close, within the timeout (plus slack for slow machines).
  Status error = conn.ReadErrorFor(0);
  EXPECT_TRUE(error.IsDeadlineExceeded()) << error.ToString();
  EXPECT_TRUE(conn.ServerClosed());
  EXPECT_GE(CounterValue(obs::kServerSessionsIdleReaped), reaped_before + 1);
}

TEST(ServerChaos, HandshakeStallIsReaped) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  options.server.handshake_timeout_ms = 100;
  ServerFixture fixture(options);

  const uint64_t timeouts_before =
      CounterValue(obs::kServerSessionHandshakeTimeouts);
  auto conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  // No HELLO: a slowloris-style opener is cut loose at the deadline.
  Status error = conn.ReadErrorFor(0);
  EXPECT_TRUE(error.IsDeadlineExceeded()) << error.ToString();
  EXPECT_TRUE(conn.ServerClosed());
  EXPECT_GE(CounterValue(obs::kServerSessionHandshakeTimeouts),
            timeouts_before + 1);
}

TEST(ServerChaos, PingKeepsAnIdleSessionAlive) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  options.server.idle_timeout_ms = 1000;
  ServerFixture fixture(options);
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  const uint64_t keepalives_before =
      CounterValue(obs::kServerSessionKeepalives);
  // Pings spaced well inside the timeout, for longer than the timeout:
  // the session must survive because each PING resets the idle clock.
  for (int i = 0; i < 12; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Status ping = client->Ping();
    ASSERT_TRUE(ping.ok()) << "ping " << i << ": " << ping.ToString();
  }
  QueryRequest query;
  query.table = "orders";
  auto rows = client->Query(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(CounterValue(obs::kServerSessionKeepalives),
            keepalives_before + 12);
}

TEST(ServerChaos, SessionCapRejectsWithTypedError) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  options.server.max_sessions = 1;
  ServerFixture fixture(options);

  auto first = fixture.Connect();
  ASSERT_NE(first, nullptr);

  const uint64_t rejected_before =
      CounterValue(obs::kServerSessionsRejectedAtCap);
  auto second = Client::Connect("127.0.0.1", fixture.port());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  EXPECT_GE(CounterValue(obs::kServerSessionsRejectedAtCap),
            rejected_before + 1);

  // Capacity frees up when the first session ends (session teardown is
  // asynchronous, so poll briefly).
  first.reset();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Result<std::unique_ptr<Client>> replacement = Status::Unavailable("never");
  while (std::chrono::steady_clock::now() < deadline) {
    replacement = Client::Connect("127.0.0.1", fixture.port());
    if (replacement.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(replacement.ok()) << replacement.status().ToString();
}

TEST(ServerChaos, PipelineFrameBudgetRejectsExcessButKeepsSession) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  options.server.max_pending_frames = 2;
  ServerFixture fixture(options);
  // auto_apply off with a one-batch unapplied window: the first MUTATE
  // commits and fills the window, the second blocks in backpressure
  // until its deadline — wedging the strand so pipelined frames pile up
  // against the budget deterministically.
  WriteAheadTableOptions ingest;
  ingest.auto_apply = false;
  ingest.max_unapplied_batches = 1;
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders", ingest).ok());

  uint64_t counter = 1;
  TupleSet base(fixture.tuples().begin(), fixture.tuples().end());
  auto mutate_payload = [&](uint32_t deadline_ms) {
    MutateRequest request;
    request.table = "orders";
    request.deadline_ms = deadline_ms;
    OrdinalTuple t = NextFreshTuple(&counter, base);
    base.insert(t);
    request.batch.Insert(t);
    return EncodeMutatePayload(request);
  };

  auto conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();

  conn.SendFrame(Opcode::kMutate, 1, mutate_payload(0));
  auto ok1 = conn.ReadOneFrame();
  ASSERT_TRUE(ok1.ok()) << ok1.status().ToString();
  EXPECT_EQ(ok1->opcode, Opcode::kMutateOk);

  const uint64_t rejected_before =
      CounterValue(obs::kServerSessionBudgetRejections);
  // #2 executes (blocked in backpressure) and later frames pile up
  // against the budget of 2. One timing freedom remains: #1's budget
  // slot is released just *after* its MUTATE_OK was sent, so at the
  // moment #2..#5 arrive at most one stale slot may still be held. #2
  // is therefore always admitted, and of #3..#5 either the last two or
  // all three are rejected (the stale slot can also free between
  // rejections, letting #4 in while #3 and #5 bounce) — but never fewer
  // than two, and rejections must not kill the session or the admitted
  // requests.
  conn.SendFrame(Opcode::kMutate, 2, mutate_payload(500));
  conn.SendFrame(Opcode::kMutate, 3, mutate_payload(500));
  conn.SendFrame(Opcode::kMutate, 4, mutate_payload(500));
  conn.SendFrame(Opcode::kMutate, 5, mutate_payload(500));

  int budget_rejections = 0;
  int backpressure_failures = 0;
  for (int i = 0; i < 4; ++i) {
    auto reply = conn.ReadOneFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->opcode, Opcode::kError);
    ASSERT_GE(reply->request_id, 2u);
    ASSERT_LE(reply->request_id, 5u);
    Status carried = Status::OK();
    ASSERT_TRUE(ParseErrorPayload(Slice(reply->payload), &carried).ok());
    if (carried.IsResourceExhausted()) {
      EXPECT_GE(reply->request_id, 3u) << reply->request_id;
      ++budget_rejections;
    } else {
      EXPECT_TRUE(carried.IsDeadlineExceeded()) << carried.ToString();
      ++backpressure_failures;
    }
  }
  EXPECT_GE(budget_rejections, 2);
  EXPECT_LE(budget_rejections, 3);
  EXPECT_EQ(backpressure_failures, 4 - budget_rejections);
  EXPECT_GE(CounterValue(obs::kServerSessionBudgetRejections),
            rejected_before + static_cast<uint64_t>(budget_rejections));

  // The session survived the rejections: keepalive still answers.
  conn.SendFrame(Opcode::kPing, 6, "");
  auto pong = conn.ReadOneFrame();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->opcode, Opcode::kPong);
  EXPECT_EQ(pong->request_id, 6u);
}

TEST(ServerChaos, ServerSurvivesHandshakesCutMidFrame) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  ServerFixture fixture(options);

  // A burst of connections whose client side dies at every possible
  // early step (including inside the HELLO frame) must leave the server
  // serving normally.
  for (uint64_t step = 1; step <= 8; ++step) {
    ClientOptions chaotic;
    chaotic.io_timeout_ms = 2000;
    chaotic.connect_hook = [step](int fd) {
      ChaosScheduleOptions schedule;
      schedule.seed = step;
      schedule.short_io_probability = 0.9;  // crawl through the frame
      schedule.cut_at_step = step;
      InstallSocketFault(
          fd, std::make_shared<FaultInjectionSocket>(schedule));
    };
    // Almost every schedule dies inside the handshake; the outcome is
    // irrelevant — the server's health afterwards is what's under test.
    auto doomed = Client::Connect("127.0.0.1", fixture.port(), chaotic);
    (void)doomed;
  }
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  QueryRequest query;
  query.table = "orders";
  auto rows = client->Query(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), fixture.tuples().size());
}

}  // namespace
}  // namespace avqdb::server
