#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace avqdb {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, ToStringIncludesCodeName) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
  EXPECT_FALSE(s.ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(Status, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    AVQDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(Status, ReturnIfErrorPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    AVQDB_RETURN_IF_ERROR(ok());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(wrapper().IsAlreadyExists());
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Result, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("no");
    return 5;
  };
  auto consume = [&](bool fail) -> Result<int> {
    AVQDB_ASSIGN_OR_RETURN(int v, produce(fail));
    return v * 2;
  };
  EXPECT_EQ(consume(false).value(), 10);
  EXPECT_TRUE(consume(true).status().IsOutOfRange());
}

TEST(Result, StructuredValueAccess) {
  struct Pair {
    int a;
    int b;
  };
  Result<Pair> r(Pair{1, 2});
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

}  // namespace
}  // namespace avqdb
