#include "src/db/query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/generator.h"
#include "src/workload/paper_relation.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

std::vector<OrdinalTuple> BruteForce(const std::vector<OrdinalTuple>& tuples,
                                     size_t attr, uint64_t lo, uint64_t hi) {
  std::vector<OrdinalTuple> out;
  for (const auto& t : tuples) {
    if (t[attr] >= lo && t[attr] <= hi) out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return out;
}

struct QueryFixture {
  explicit QueryFixture(bool avq, size_t block_size = 512)
      : device(block_size) {
    schema = testing::IntSchema({8, 16, 32, 64});
    auto rel = GenerateRelation([&] {
      RelationSpec spec;
      spec.explicit_domain_sizes = {8, 16, 32, 64};
      spec.num_attributes = 4;
      spec.num_tuples = 1800;
      spec.dedupe = true;
      spec.seed = 4242;
      return spec;
    }());
    tuples = rel.value().tuples;
    schema = rel.value().schema;
    if (avq) {
      CodecOptions options;
      options.block_size = block_size;
      table = Table::CreateAvq(schema, &device, options).value();
    } else {
      table = Table::CreateHeap(schema, &device).value();
    }
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
  }
  MemBlockDevice device;
  SchemaPtr schema;
  std::vector<OrdinalTuple> tuples;
  std::unique_ptr<Table> table;
};

class QueryPaths : public ::testing::TestWithParam<bool> {};

TEST_P(QueryPaths, ClusteredRangeOnLeadingAttribute) {
  QueryFixture f(GetParam());
  QueryStats stats;
  RangeQuery query{0, 2, 5};
  auto results = ExecuteRangeSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results.value(), BruteForce(f.tuples, 0, 2, 5));
  EXPECT_EQ(stats.path, AccessPath::kClusteredRange);
  EXPECT_GT(stats.data_blocks_read, 0u);
  // Clustered scans read only the covering range, not the whole table.
  EXPECT_LT(stats.data_blocks_read, f.table->DataBlockCount());
  EXPECT_EQ(stats.tuples_matched, results.value().size());
}

TEST_P(QueryPaths, FullScanWithoutIndex) {
  QueryFixture f(GetParam());
  QueryStats stats;
  RangeQuery query{2, 10, 20};
  auto results = ExecuteRangeSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value(), BruteForce(f.tuples, 2, 10, 20));
  EXPECT_EQ(stats.path, AccessPath::kFullScan);
  EXPECT_EQ(stats.data_blocks_read, f.table->DataBlockCount());
  EXPECT_EQ(stats.tuples_examined, f.tuples.size());
}

TEST_P(QueryPaths, SecondaryIndexPath) {
  QueryFixture f(GetParam());
  ASSERT_TRUE(f.table->CreateSecondaryIndex(3).ok());
  QueryStats stats;
  RangeQuery query{3, 7, 7};  // narrow point range
  auto results = ExecuteRangeSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value(), BruteForce(f.tuples, 3, 7, 7));
  EXPECT_EQ(stats.path, AccessPath::kSecondaryIndex);
  EXPECT_GT(stats.index_blocks_read, 0u);
  EXPECT_LE(stats.data_blocks_read, f.table->DataBlockCount());
}

TEST_P(QueryPaths, EmptyAndClampedRanges) {
  QueryFixture f(GetParam());
  QueryStats stats;
  // lo > hi: empty.
  auto results = ExecuteRangeSelect(*f.table, RangeQuery{1, 9, 3}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
  EXPECT_EQ(stats.data_blocks_read, 0u);
  // hi beyond the domain: clamped, equivalent to full domain.
  results = ExecuteRangeSelect(*f.table, RangeQuery{1, 0, 9999}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), f.tuples.size());
  // lo beyond the domain: empty.
  results = ExecuteRangeSelect(*f.table, RangeQuery{1, 999, 9999}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
}

TEST_P(QueryPaths, InvalidAttributeRejected) {
  QueryFixture f(GetParam());
  EXPECT_TRUE(ExecuteRangeSelect(*f.table, RangeQuery{9, 0, 1}, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_P(QueryPaths, AllAttributesAgreeWithBruteForce) {
  QueryFixture f(GetParam());
  ASSERT_TRUE(f.table->CreateSecondaryIndex(1).ok());
  for (size_t attr = 0; attr < 4; ++attr) {
    const uint64_t radix = f.schema->radices()[attr];
    const uint64_t lo = radix / 4;
    const uint64_t hi = radix / 2;
    QueryStats stats;
    auto results =
        ExecuteRangeSelect(*f.table, RangeQuery{attr, lo, hi}, &stats);
    ASSERT_TRUE(results.ok());
    EXPECT_EQ(results.value(), BruteForce(f.tuples, attr, lo, hi))
        << "attr " << attr;
  }
}

INSTANTIATE_TEST_SUITE_P(Stores, QueryPaths, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "avq" : "heap";
                         });

TEST(QueryRows, RowLevelSelection) {
  auto schema = PaperEmployeeSchema();
  MemBlockDevice device(8192);
  auto table = Table::CreateHeap(schema, &device).value();
  for (const Row& row : PaperEmployeeRows()) {
    ASSERT_TRUE(table->InsertRow(row).ok());
  }
  QueryStats stats;
  auto rows = ExecuteRangeSelectRows(*table, "years_in_company",
                                     Value(int64_t{30}), Value(int64_t{35}),
                                     &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  size_t expected = 0;
  for (const Row& row : PaperEmployeeRows()) {
    const int64_t years = row[2].AsInt();
    if (years >= 30 && years <= 35) ++expected;
  }
  EXPECT_EQ(rows.value().size(), expected);
  for (const Row& row : rows.value()) {
    EXPECT_GE(row[2].AsInt(), 30);
    EXPECT_LE(row[2].AsInt(), 35);
  }
  // Unknown attribute and un-encodable bounds fail cleanly.
  EXPECT_TRUE(ExecuteRangeSelectRows(*table, "salary", Value(int64_t{1}),
                                     Value(int64_t{2}), nullptr)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteRangeSelectRows(*table, "years_in_company",
                                     Value(int64_t{-5}), Value(int64_t{2}),
                                     nullptr)
                  .status()
                  .IsOutOfRange());
}

std::vector<OrdinalTuple> BruteForceConjunctive(
    const std::vector<OrdinalTuple>& tuples,
    const std::vector<RangeQuery>& preds) {
  std::vector<OrdinalTuple> out;
  for (const auto& t : tuples) {
    bool match = true;
    for (const auto& p : preds) {
      if (t[p.attribute] < p.lo || t[p.attribute] > p.hi) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return out;
}

class ConjunctivePaths : public ::testing::TestWithParam<bool> {};

TEST_P(ConjunctivePaths, ClusteredDriverWithResidualFilters) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{0, 2, 5}, {2, 8, 24}, {3, 10, 50}};
  QueryStats stats;
  auto results = ExecuteConjunctiveSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results.value(),
            BruteForceConjunctive(f.tuples, query.predicates));
  EXPECT_EQ(stats.path, AccessPath::kClusteredRange);
  EXPECT_EQ(stats.driver_attribute, 0u);
  EXPECT_LT(stats.data_blocks_read, f.table->DataBlockCount());
}

TEST_P(ConjunctivePaths, PicksMostSelectiveSecondaryIndex) {
  QueryFixture f(GetParam());
  ASSERT_TRUE(f.table->CreateSecondaryIndex(1).ok());
  ASSERT_TRUE(f.table->CreateSecondaryIndex(3).ok());
  ConjunctiveQuery query;
  // Attribute 1 covers half its domain, attribute 3 a single value:
  // attribute 3 must drive.
  query.predicates = {{1, 0, 7}, {3, 9, 9}};
  QueryStats stats;
  auto results = ExecuteConjunctiveSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value(),
            BruteForceConjunctive(f.tuples, query.predicates));
  EXPECT_EQ(stats.path, AccessPath::kSecondaryIndex);
  EXPECT_EQ(stats.driver_attribute, 3u);
}

TEST_P(ConjunctivePaths, FullScanWithoutUsablePredicate) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{1, 2, 9}, {2, 5, 30}};
  QueryStats stats;
  auto results = ExecuteConjunctiveSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value(),
            BruteForceConjunctive(f.tuples, query.predicates));
  EXPECT_EQ(stats.path, AccessPath::kFullScan);
  EXPECT_EQ(stats.data_blocks_read, f.table->DataBlockCount());
}

TEST_P(ConjunctivePaths, RepeatedAttributesIntersect) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{2, 5, 20}, {2, 10, 30}};  // effective [10, 20]
  auto results = ExecuteConjunctiveSelect(*f.table, query, nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value(),
            BruteForceConjunctive(f.tuples, {{2, 10, 20}}));
  // Contradictory intersection: empty without touching data.
  query.predicates = {{2, 5, 10}, {2, 20, 30}};
  QueryStats stats;
  results = ExecuteConjunctiveSelect(*f.table, query, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
  EXPECT_EQ(stats.data_blocks_read, 0u);
}

TEST_P(ConjunctivePaths, EmptyPredicateListScansEverything) {
  QueryFixture f(GetParam());
  QueryStats stats;
  auto results = ExecuteConjunctiveSelect(*f.table, ConjunctiveQuery{}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), f.tuples.size());
  EXPECT_EQ(stats.path, AccessPath::kFullScan);
}

TEST_P(ConjunctivePaths, InvalidAttributeRejected) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{17, 0, 1}};
  EXPECT_TRUE(ExecuteConjunctiveSelect(*f.table, query, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_P(ConjunctivePaths, AggregatesMatchBruteForce) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{1, 4, 11}};
  QueryStats stats;
  auto agg = ExecuteAggregate(*f.table, query, 2, &stats);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  uint64_t count = 0, min = ~0ull, max = 0, sum = 0;
  for (const auto& t : f.tuples) {
    if (t[1] < 4 || t[1] > 11) continue;
    ++count;
    min = std::min(min, t[2]);
    max = std::max(max, t[2]);
    sum += t[2];
  }
  ASSERT_GT(count, 0u);
  EXPECT_EQ(agg->count, count);
  EXPECT_EQ(agg->min, min);
  EXPECT_EQ(agg->max, max);
  EXPECT_EQ(static_cast<uint64_t>(agg->sum), sum);
  EXPECT_EQ(stats.tuples_matched, count);
}

TEST_P(ConjunctivePaths, AggregateOverEmptySelection) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{1, 9, 3}};  // empty range
  auto agg = ExecuteAggregate(*f.table, query, 0, nullptr);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 0u);
  EXPECT_TRUE(ExecuteAggregate(*f.table, query, 99, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_P(ConjunctivePaths, ProjectionMatchesBruteForce) {
  QueryFixture f(GetParam());
  ConjunctiveQuery query;
  query.predicates = {{1, 2, 9}};
  QueryStats stats;
  auto projected =
      ExecuteProject(*f.table, query, {3, 1}, /*distinct=*/false, &stats);
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();

  std::vector<OrdinalTuple> expected;
  for (const auto& t : f.tuples) {
    if (t[1] >= 2 && t[1] <= 9) expected.push_back({t[3], t[1]});
  }
  std::sort(expected.begin(), expected.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  EXPECT_EQ(projected.value(), expected);

  // Distinct collapses duplicates.
  auto distinct =
      ExecuteProject(*f.table, query, {3, 1}, /*distinct=*/true, nullptr);
  ASSERT_TRUE(distinct.ok());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(distinct.value(), expected);
  EXPECT_LE(distinct->size(), projected->size());
}

TEST_P(ConjunctivePaths, ProjectionAllowsRepeatsAndValidates) {
  QueryFixture f(GetParam());
  auto repeated =
      ExecuteProject(*f.table, ConjunctiveQuery{}, {0, 0}, true, nullptr);
  ASSERT_TRUE(repeated.ok());
  for (const auto& t : repeated.value()) {
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], t[1]);
  }
  EXPECT_TRUE(ExecuteProject(*f.table, ConjunctiveQuery{}, {}, false, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ExecuteProject(*f.table, ConjunctiveQuery{}, {9}, false, nullptr)
          .status()
          .IsInvalidArgument());
}

TEST_P(ConjunctivePaths, CursorStreamsWholeTable) {
  QueryFixture f(GetParam());
  auto cursor = f.table->NewCursor();
  ASSERT_TRUE(cursor.ok());
  std::vector<OrdinalTuple> streamed;
  for (Table::Cursor cur = std::move(cursor).value(); cur.Valid();) {
    streamed.push_back(cur.tuple());
    ASSERT_TRUE(cur.Next().ok());
  }
  EXPECT_EQ(streamed, f.table->ScanAll().value());
}

INSTANTIATE_TEST_SUITE_P(Stores, ConjunctivePaths, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "avq" : "heap";
                         });

TEST(QueryStatsTest, ToStringMentionsPath) {
  QueryStats stats;
  stats.path = AccessPath::kSecondaryIndex;
  EXPECT_NE(stats.ToString().find("secondary-index"), std::string::npos);
  EXPECT_EQ(AccessPathName(AccessPath::kClusteredRange), "clustered-range");
  EXPECT_EQ(AccessPathName(AccessPath::kFullScan), "full-scan");
}

}  // namespace
}  // namespace avqdb
