#include "src/db/statistics.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/workload/distributions.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(AttributeHistogram, EmptyValues) {
  auto histogram = AttributeHistogram::Build({}, 16);
  EXPECT_TRUE(histogram.empty());
  EXPECT_DOUBLE_EQ(histogram.EstimateSelectivity(0, 100), 0.0);
}

TEST(AttributeHistogram, UniformMatchesRangeFraction) {
  Random rng(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) values.push_back(rng.Uniform(1000));
  auto histogram = AttributeHistogram::Build(std::move(values), 64);
  EXPECT_NEAR(histogram.EstimateSelectivity(0, 999), 1.0, 0.01);
  EXPECT_NEAR(histogram.EstimateSelectivity(0, 499), 0.5, 0.03);
  EXPECT_NEAR(histogram.EstimateSelectivity(250, 499), 0.25, 0.03);
  EXPECT_NEAR(histogram.EstimateSelectivity(900, 2000), 0.10, 0.02);
}

TEST(AttributeHistogram, SkewConcentratesMass) {
  Random rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(SampleSkewed(rng, 1000));  // 60% below 400
  }
  auto histogram = AttributeHistogram::Build(std::move(values), 64);
  EXPECT_NEAR(histogram.EstimateSelectivity(0, 399), 0.6, 0.03);
  EXPECT_NEAR(histogram.EstimateSelectivity(400, 999), 0.4, 0.03);
}

TEST(AttributeHistogram, DegenerateSingleValue) {
  std::vector<uint64_t> values(100, 7);
  auto histogram = AttributeHistogram::Build(std::move(values), 16);
  EXPECT_NEAR(histogram.EstimateSelectivity(7, 7), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(histogram.EstimateSelectivity(0, 6), 0.0);
  EXPECT_DOUBLE_EQ(histogram.EstimateSelectivity(8, 10), 0.0);
}

TEST(AttributeHistogram, InvertedRangeIsZero) {
  auto histogram = AttributeHistogram::Build({1, 2, 3}, 2);
  EXPECT_DOUBLE_EQ(histogram.EstimateSelectivity(5, 2), 0.0);
}

TEST(TableStatistics, AnalyzeAndPlannerUseSkewAwareness) {
  // Attribute 1 is heavily skewed toward 0; attribute 2 is uniform. A
  // *narrow* range on attribute 1's hot value matches more tuples than a
  // wide range on attribute 2 — with statistics the planner must drive
  // with attribute 2.
  // The trailing wide attribute keeps the tuple space large enough that
  // set semantics do not clip the hot mass.
  auto schema = testing::IntSchema({4, 100, 100, 1000000});
  MemBlockDevice device(1024);
  CodecOptions options;
  options.block_size = 1024;
  auto table = Table::CreateAvq(schema, &device, options).value();
  Random rng(9);
  std::set<OrdinalTuple> unique;
  while (unique.size() < 3000) {
    // 90% of attribute-1 values are 0.
    const uint64_t skewed = rng.Bernoulli(0.9) ? 0 : rng.Uniform(100);
    unique.insert(
        {rng.Uniform(4), skewed, rng.Uniform(100), rng.Uniform(1000000)});
  }
  std::vector<OrdinalTuple> tuples(unique.begin(), unique.end());
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  ASSERT_TRUE(table->CreateSecondaryIndex(1).ok());
  ASSERT_TRUE(table->CreateSecondaryIndex(2).ok());

  ConjunctiveQuery query;
  // Predicate widths: attr 1 covers 1/100 of its domain but ~90% of the
  // data; attr 2 covers 30/100 of its domain and ~30% of the data.
  query.predicates = {{1, 0, 0}, {2, 10, 39}};

  // Without statistics, range-width ranking prefers attribute 1.
  EXPECT_EQ(table->statistics(), nullptr);
  QueryStats naive;
  auto before = ExecuteConjunctiveSelect(*table, query, &naive);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(naive.driver_attribute, 1u);

  // With statistics, the planner sees through the skew.
  ASSERT_TRUE(table->Analyze().ok());
  ASSERT_NE(table->statistics(), nullptr);
  EXPECT_NEAR(table->statistics()->EstimateSelectivity(1, 0, 0), 0.9, 0.05);
  QueryStats informed;
  auto after = ExecuteConjunctiveSelect(*table, query, &informed);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(informed.driver_attribute, 2u);
  EXPECT_EQ(before.value(), after.value());  // same answer either way
  EXPECT_LE(informed.data_blocks_read, naive.data_blocks_read);
}

TEST(TableStatistics, SelectivityOutOfRangeAttrIsOne) {
  TableStatistics stats;
  stats.num_tuples = 10;
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity(3, 0, 1), 1.0);
}

}  // namespace
}  // namespace avqdb
