#include "src/storage/pager.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/common/logging.h"
#include "src/db/exec_context.h"
#include "src/storage/fault_injection_device.h"

namespace avqdb {
namespace {

TEST(Pager, CountsOperations) {
  MemBlockDevice device(64);
  Pager pager(&device);
  BlockId id = pager.Allocate().value();
  std::string payload = "data";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Free(id).ok());
  const IoStats& stats = pager.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.logical_reads, 2u);
  EXPECT_EQ(stats.physical_reads, 2u);  // no buffer pool
  EXPECT_EQ(stats.frees, 1u);
}

TEST(Pager, SimulatedTimesUseDiskParameters) {
  MemBlockDevice device(8192);
  DiskParameters disk;  // paper defaults: ~32.7 ms per 8 KiB block
  Pager pager(&device, disk);
  BlockId id = pager.Allocate().value();
  std::string payload = "x";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  const double expected = disk.BlockTimeMs(8192);
  EXPECT_NEAR(pager.stats().simulated_read_ms, expected, 1e-9);
  EXPECT_NEAR(pager.stats().simulated_write_ms, expected, 1e-9);
  EXPECT_NEAR(expected, 32.73, 0.01);  // 20 + 8 + 2 + 8192/3000
}

TEST(Pager, BufferPoolAbsorbsRereads) {
  MemBlockDevice device(64);
  Pager pager(&device);
  pager.EnableBufferPool(4);
  BlockId id = pager.Allocate().value();
  std::string payload = "cached";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  for (int i = 0; i < 5; ++i) {
    auto block = pager.Read(id);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(block.value().substr(0, 6), "cached");
  }
  EXPECT_EQ(pager.stats().logical_reads, 5u);
  // The write primed the cache, so no physical read at all.
  EXPECT_EQ(pager.stats().physical_reads, 0u);
}

TEST(Pager, BufferPoolInvalidatedOnFree) {
  MemBlockDevice device(64);
  Pager pager(&device);
  pager.EnableBufferPool(4);
  BlockId id = pager.Allocate().value();
  std::string payload = "gone";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Free(id).ok());
  EXPECT_TRUE(pager.Read(id).status().IsInvalidArgument());
}

TEST(Pager, StatsDeltaArithmetic) {
  MemBlockDevice device(64);
  Pager pager(&device);
  BlockId id = pager.Allocate().value();
  std::string payload = "x";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  const IoStats before = pager.stats();
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  const IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.physical_reads, 2u);
  EXPECT_EQ(delta.writes, 0u);
  EXPECT_FALSE(delta.ToString().empty());
}

TEST(Pager, ResetStats) {
  MemBlockDevice device(64);
  Pager pager(&device);
  ASSERT_TRUE(pager.Allocate().ok());
  pager.ResetStats();
  EXPECT_EQ(pager.stats().allocations, 0u);
}

// ---- retry policy ----

// Primes one readable block behind a fault-injection wrapper.
BlockId PrimeBlock(FaultInjectionBlockDevice* fault) {
  BlockId id = fault->Allocate().value();
  std::string payload = "retryable";
  AVQDB_CHECK_OK(fault->Write(id, Slice(payload)));
  return id;
}

TEST(PagerRetry, TransientFailureRetriedUntilSuccess) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  pager.SetRetryPolicy({.max_attempts = 3, .backoff_us = 1});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/true);  // first read attempt fails
  auto read = pager.Read(id);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->substr(0, 9), "retryable");
  EXPECT_EQ(pager.stats().read_retries, 1u);
}

TEST(PagerRetry, MaxAttemptsBoundsTheRetries) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  pager.SetRetryPolicy({.max_attempts = 2, .backoff_us = 1});
  BlockId id = PrimeBlock(&fault);
  // Sticky transient fault: every read attempt fails.
  fault.FailReadAt(1, /*transient=*/true, /*sticky=*/true);
  auto read = pager.Read(id);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsUnavailable()) << read.status().ToString();
  EXPECT_EQ(pager.stats().read_retries, 1u);  // 2 attempts = 1 retry
}

TEST(PagerRetry, SingleAttemptPolicyNeverRetries) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  pager.SetRetryPolicy({.max_attempts = 1, .backoff_us = 1});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/true);
  EXPECT_TRUE(pager.Read(id).status().IsUnavailable());
  EXPECT_EQ(pager.stats().read_retries, 0u);
}

TEST(PagerRetry, PermanentErrorsAreNotRetried) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  pager.SetRetryPolicy({.max_attempts = 5, .backoff_us = 1});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/false);  // hard IOError
  EXPECT_TRUE(pager.Read(id).status().IsIOError());
  EXPECT_EQ(pager.stats().read_retries, 0u);
}

TEST(PagerRetry, ExpiredDeadlineStopsTheRetryLoop) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  // Generous budget: without the deadline this would retry for a while.
  pager.SetRetryPolicy({.max_attempts = 10, .backoff_us = 50'000});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/true, /*sticky=*/true);

  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - std::chrono::milliseconds(1));
  ExecContextScope scope(&ctx);
  const auto started = std::chrono::steady_clock::now();
  auto read = pager.Read(id);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDeadlineExceeded())
      << read.status().ToString();
  // The loop bailed at the governance check instead of sleeping through
  // nine 50 ms backoffs.
  EXPECT_LT(elapsed, std::chrono::milliseconds(200));
}

TEST(PagerRetry, CancellationStopsTheRetryLoop) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  pager.SetRetryPolicy({.max_attempts = 10, .backoff_us = 50'000});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/true, /*sticky=*/true);

  ExecContext ctx;
  ctx.Cancel();
  ExecContextScope scope(&ctx);
  auto read = pager.Read(id);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCancelled()) << read.status().ToString();
}

TEST(PagerRetry, NearDeadlineCapsTheBackoffSleep) {
  MemBlockDevice base(64);
  FaultInjectionBlockDevice fault(&base);
  Pager pager(&fault);
  // One retry whose configured backoff (300 ms) exceeds the remaining
  // deadline budget (~30 ms): the sleep must be clamped to the deadline,
  // after which the loop stops with DeadlineExceeded.
  pager.SetRetryPolicy({.max_attempts = 10, .backoff_us = 300'000});
  BlockId id = PrimeBlock(&fault);
  fault.FailReadAt(1, /*transient=*/true, /*sticky=*/true);

  ExecContext ctx;
  ctx.SetDeadlineAfter(std::chrono::milliseconds(30));
  ExecContextScope scope(&ctx);
  const auto started = std::chrono::steady_clock::now();
  auto read = pager.Read(id);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDeadlineExceeded())
      << read.status().ToString();
  EXPECT_LT(elapsed, std::chrono::milliseconds(250));
}

}  // namespace
}  // namespace avqdb
