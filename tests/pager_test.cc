#include "src/storage/pager.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(Pager, CountsOperations) {
  MemBlockDevice device(64);
  Pager pager(&device);
  BlockId id = pager.Allocate().value();
  std::string payload = "data";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Free(id).ok());
  const IoStats& stats = pager.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.logical_reads, 2u);
  EXPECT_EQ(stats.physical_reads, 2u);  // no buffer pool
  EXPECT_EQ(stats.frees, 1u);
}

TEST(Pager, SimulatedTimesUseDiskParameters) {
  MemBlockDevice device(8192);
  DiskParameters disk;  // paper defaults: ~32.7 ms per 8 KiB block
  Pager pager(&device, disk);
  BlockId id = pager.Allocate().value();
  std::string payload = "x";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  const double expected = disk.BlockTimeMs(8192);
  EXPECT_NEAR(pager.stats().simulated_read_ms, expected, 1e-9);
  EXPECT_NEAR(pager.stats().simulated_write_ms, expected, 1e-9);
  EXPECT_NEAR(expected, 32.73, 0.01);  // 20 + 8 + 2 + 8192/3000
}

TEST(Pager, BufferPoolAbsorbsRereads) {
  MemBlockDevice device(64);
  Pager pager(&device);
  pager.EnableBufferPool(4);
  BlockId id = pager.Allocate().value();
  std::string payload = "cached";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  for (int i = 0; i < 5; ++i) {
    auto block = pager.Read(id);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(block.value().substr(0, 6), "cached");
  }
  EXPECT_EQ(pager.stats().logical_reads, 5u);
  // The write primed the cache, so no physical read at all.
  EXPECT_EQ(pager.stats().physical_reads, 0u);
}

TEST(Pager, BufferPoolInvalidatedOnFree) {
  MemBlockDevice device(64);
  Pager pager(&device);
  pager.EnableBufferPool(4);
  BlockId id = pager.Allocate().value();
  std::string payload = "gone";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  ASSERT_TRUE(pager.Free(id).ok());
  EXPECT_TRUE(pager.Read(id).status().IsInvalidArgument());
}

TEST(Pager, StatsDeltaArithmetic) {
  MemBlockDevice device(64);
  Pager pager(&device);
  BlockId id = pager.Allocate().value();
  std::string payload = "x";
  ASSERT_TRUE(pager.Write(id, Slice(payload)).ok());
  const IoStats before = pager.stats();
  ASSERT_TRUE(pager.Read(id).ok());
  ASSERT_TRUE(pager.Read(id).ok());
  const IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.physical_reads, 2u);
  EXPECT_EQ(delta.writes, 0u);
  EXPECT_FALSE(delta.ToString().empty());
}

TEST(Pager, ResetStats) {
  MemBlockDevice device(64);
  Pager pager(&device);
  ASSERT_TRUE(pager.Allocate().ok());
  pager.ResetStats();
  EXPECT_EQ(pager.stats().allocations, 0u);
}

}  // namespace
}  // namespace avqdb
