// Property tests for the digit-wise φ algebra: every operation is
// cross-checked against plain 128-bit integer arithmetic through Phi /
// PhiInverse on randomly drawn radix systems.

#include "src/ordinal/mixed_radix.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/ordinal/phi.h"

namespace avqdb {
namespace {

using mixed_radix::Digits;

TEST(MixedRadix, ValidateChecksArityAndRange) {
  Digits radices = {4, 8};
  EXPECT_TRUE(mixed_radix::Validate(radices, {3, 7}).ok());
  EXPECT_TRUE(mixed_radix::Validate(radices, {4, 0}).IsOutOfRange());
  EXPECT_TRUE(mixed_radix::Validate(radices, {0}).IsInvalidArgument());
}

TEST(MixedRadix, CompareBasics) {
  EXPECT_EQ(mixed_radix::Compare({1, 2}, {1, 2}), 0);
  EXPECT_LT(mixed_radix::Compare({0, 9}, {1, 0}), 0);
  EXPECT_GT(mixed_radix::Compare({1, 0}, {0, 9}), 0);
}

TEST(MixedRadix, ZeroAndMax) {
  Digits radices = {4, 8, 2};
  EXPECT_EQ(mixed_radix::Zero(radices), (Digits{0, 0, 0}));
  EXPECT_EQ(mixed_radix::Max(radices), (Digits{3, 7, 1}));
  EXPECT_TRUE(mixed_radix::IsZero(mixed_radix::Zero(radices)));
  EXPECT_FALSE(mixed_radix::IsZero(mixed_radix::Max(radices)));
}

TEST(MixedRadix, SubWithBorrow) {
  // (1,0) - (0,1) in radices (4,8): 8 - 1 = 7 = (0,7).
  Digits out;
  ASSERT_TRUE(mixed_radix::Sub({4, 8}, {1, 0}, {0, 1}, &out).ok());
  EXPECT_EQ(out, (Digits{0, 7}));
}

TEST(MixedRadix, SubUnderflowRejected) {
  Digits out;
  EXPECT_TRUE(
      mixed_radix::Sub({4, 8}, {0, 1}, {1, 0}, &out).IsOutOfRange());
}

TEST(MixedRadix, AddWithCarry) {
  Digits out;
  ASSERT_TRUE(mixed_radix::Add({4, 8}, {0, 7}, {0, 1}, &out).ok());
  EXPECT_EQ(out, (Digits{1, 0}));
}

TEST(MixedRadix, AddOverflowRejected) {
  Digits out;
  Digits radices = {4, 8};
  EXPECT_TRUE(mixed_radix::Add(radices, mixed_radix::Max(radices), {0, 1},
                               &out)
                  .IsOutOfRange());
}

TEST(MixedRadix, AddSmallCarryChain) {
  // (0, 7, 7) + 1 in radices (4, 8, 8) -> (1, 0, 0).
  Digits out;
  ASSERT_TRUE(mixed_radix::AddSmall({4, 8, 8}, {0, 7, 7}, 1, &out).ok());
  EXPECT_EQ(out, (Digits{1, 0, 0}));
}

TEST(MixedRadix, IncrementWalksWholeSpace) {
  Digits radices = {2, 3, 2};
  Digits current = mixed_radix::Zero(radices);
  size_t count = 1;
  while (mixed_radix::Increment(radices, &current).ok()) {
    ++count;
  }
  EXPECT_EQ(count, 2u * 3u * 2u);
  EXPECT_EQ(current, mixed_radix::Max(radices));
}

TEST(MixedRadix, AliasingAllowed) {
  Digits a = {2, 5};
  ASSERT_TRUE(mixed_radix::Sub({4, 8}, a, {0, 6}, &a).ok());
  EXPECT_EQ(a, (Digits{1, 7}));
}

// ---- Randomized cross-checks against 128-bit integer arithmetic ----

struct RadixCase {
  const char* name;
  Digits radices;
};

class MixedRadixProperty : public ::testing::TestWithParam<RadixCase> {};

Digits RandomDigits(const Digits& radices, Random& rng) {
  Digits out(radices.size());
  for (size_t i = 0; i < radices.size(); ++i) {
    out[i] = rng.Uniform(radices[i]);
  }
  return out;
}

TEST_P(MixedRadixProperty, SubMatchesIntegerArithmetic) {
  const Digits& radices = GetParam().radices;
  Random rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Digits a = RandomDigits(radices, rng);
    Digits b = RandomDigits(radices, rng);
    if (mixed_radix::Compare(a, b) < 0) std::swap(a, b);
    Digits diff;
    ASSERT_TRUE(mixed_radix::Sub(radices, a, b, &diff).ok());
    const u128 expected =
        Phi(radices, a).value() - Phi(radices, b).value();
    EXPECT_EQ(Phi(radices, diff).value(), expected);
  }
}

TEST_P(MixedRadixProperty, AddInvertsSub) {
  const Digits& radices = GetParam().radices;
  Random rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    Digits a = RandomDigits(radices, rng);
    Digits b = RandomDigits(radices, rng);
    if (mixed_radix::Compare(a, b) < 0) std::swap(a, b);
    Digits diff, back;
    ASSERT_TRUE(mixed_radix::Sub(radices, a, b, &diff).ok());
    ASSERT_TRUE(mixed_radix::Add(radices, b, diff, &back).ok());
    EXPECT_EQ(back, a);  // Theorem 2.1's losslessness, digit-wise
  }
}

TEST_P(MixedRadixProperty, AbsDiffIsSymmetric) {
  const Digits& radices = GetParam().radices;
  Random rng(303);
  for (int trial = 0; trial < 200; ++trial) {
    Digits a = RandomDigits(radices, rng);
    Digits b = RandomDigits(radices, rng);
    Digits d1, d2;
    ASSERT_TRUE(mixed_radix::AbsDiff(radices, a, b, &d1).ok());
    ASSERT_TRUE(mixed_radix::AbsDiff(radices, b, a, &d2).ok());
    EXPECT_EQ(d1, d2);
  }
}

TEST_P(MixedRadixProperty, CompareMatchesPhiOrder) {
  const Digits& radices = GetParam().radices;
  Random rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    Digits a = RandomDigits(radices, rng);
    Digits b = RandomDigits(radices, rng);
    const u128 pa = Phi(radices, a).value();
    const u128 pb = Phi(radices, b).value();
    const int cmp = mixed_radix::Compare(a, b);
    if (pa < pb) {
      EXPECT_LT(cmp, 0);
    } else if (pa > pb) {
      EXPECT_GT(cmp, 0);
    } else {
      EXPECT_EQ(cmp, 0);
    }
  }
}

TEST_P(MixedRadixProperty, AddSmallMatchesIntegerArithmetic) {
  const Digits& radices = GetParam().radices;
  Random rng(505);
  const u128 space = SpaceSize(radices).value();
  for (int trial = 0; trial < 300; ++trial) {
    Digits a = RandomDigits(radices, rng);
    const u128 pa = Phi(radices, a).value();
    const uint64_t delta = rng.Uniform(1000);
    Digits out;
    Status s = mixed_radix::AddSmall(radices, a, delta, &out);
    if (pa + delta < space) {
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(Phi(radices, out).value(), pa + delta);
    } else {
      EXPECT_TRUE(s.IsOutOfRange());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadixSystems, MixedRadixProperty,
    ::testing::Values(
        RadixCase{"paper_shape", {8, 16, 64, 64, 64}},
        RadixCase{"binary", {2, 2, 2, 2, 2, 2, 2, 2}},
        RadixCase{"single_digit", {1000000}},
        RadixCase{"mixed_widths", {3, 1000, 7, 65536, 2}},
        RadixCase{"with_unit_radix", {5, 1, 9, 1, 4}},
        RadixCase{"wide", {100000, 100000, 100000, 100000}}),
    [](const ::testing::TestParamInfo<RadixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace avqdb
