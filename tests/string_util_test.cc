#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(StringUtil, Format) {
  EXPECT_EQ(StringFormat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StringFormat("%s", ""), "");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.0 KiB");
  EXPECT_EQ(HumanBytes(8192), "8.0 KiB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(uint64_t{5} * 1024 * 1024), "5.0 MiB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(StringUtil, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(100000), "100,000");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtil, HexDump) {
  const uint8_t bytes[] = {0x0a, 0x1f, 0x00, 0xff};
  EXPECT_EQ(HexDump(bytes, 4), "0a 1f 00 ff");
  EXPECT_EQ(HexDump(bytes, 0), "");
}

}  // namespace
}  // namespace avqdb
