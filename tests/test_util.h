// Shared helpers for the avqdb test suites.

#ifndef AVQDB_TESTS_TEST_UTIL_H_
#define AVQDB_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/schema/domain.h"
#include "src/schema/schema.h"
#include "src/schema/tuple.h"

namespace avqdb::testing {

// Schema with pure integer domains of the given cardinalities
// (attribute names a0, a1, ...).
inline SchemaPtr IntSchema(const std::vector<uint64_t>& cardinalities) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    attrs.push_back(Attribute{
        "a" + std::to_string(i),
        std::make_shared<IntegerRangeDomain>(
            0, static_cast<int64_t>(cardinalities[i]) - 1)});
  }
  return Schema::Create(std::move(attrs)).value();
}

// The numeric shape of the paper's Figure 2.2 employee relation:
// domains of size 8, 16, 64, 64, 64 (m = 5 bytes).
inline SchemaPtr PaperShapeSchema() {
  return IntSchema({8, 16, 64, 64, 64});
}

// Uniform random tuple for `schema`.
inline OrdinalTuple RandomTuple(const Schema& schema, Random& rng) {
  OrdinalTuple tuple(schema.num_attributes());
  for (size_t i = 0; i < tuple.size(); ++i) {
    tuple[i] = rng.Uniform(schema.radices()[i]);
  }
  return tuple;
}

inline std::vector<OrdinalTuple> RandomTuples(const Schema& schema,
                                              size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<OrdinalTuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tuples.push_back(RandomTuple(schema, rng));
  }
  return tuples;
}

}  // namespace avqdb::testing

#endif  // AVQDB_TESTS_TEST_UTIL_H_
