// Remote telemetry over the wire: STATS/STATS_RESULT round trips against
// a live server, the always-on query journal, and EXPLAIN ANALYZE parity
// between the wire trace trailer and an in-process traced Select.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/db/query.h"
#include "src/obs/metric_names.h"
#include "src/obs/quantile.h"
#include "src/obs/query_journal.h"
#include "src/obs/trace.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using avqdb::server::testing::CounterValue;
using avqdb::server::testing::RangeOn;
using avqdb::server::testing::RawConn;
using avqdb::server::testing::ServerFixture;

const obs::MetricsSnapshot::HistogramSample* FindHistogram(
    const obs::MetricsSnapshot& snapshot, const char* name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::set<std::string> SpanNames(const obs::QueryTrace& trace) {
  std::set<std::string> names;
  for (const auto& span : trace.spans()) names.insert(span.name);
  return names;
}

TEST(ServerStats, FetchStatsReturnsRequestHistograms) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  // Drive a few queries so the per-request histograms have samples.
  for (int i = 0; i < 3; ++i) {
    QueryRequest request;
    request.table = "orders";
    request.query = RangeOn(0, 0, 3);
    auto result = client->Query(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  const uint64_t stats_before = CounterValue(obs::kServerStatsRequests);
  auto stats = client->FetchStats(kStatsSectionMetrics);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->sections, kStatsSectionMetrics);
  EXPECT_TRUE(stats->journal.empty());
  EXPECT_EQ(CounterValue(obs::kServerStatsRequests), stats_before + 1);

  for (const char* name :
       {obs::kServerRequestQueueMicros, obs::kServerRequestExecMicros,
        obs::kServerRequestSendMicros}) {
    const auto* hist = FindHistogram(stats->metrics, name);
    ASSERT_NE(hist, nullptr) << name << " missing from remote snapshot";
    EXPECT_GE(hist->count, 3u) << name;
    // The shared estimator works directly on the wire-decoded sample.
    const obs::Quantiles q = obs::EstimateQuantiles(*hist);
    EXPECT_LE(q.p50, q.p95) << name;
    EXPECT_LE(q.p95, q.p99) << name;
  }
  EXPECT_TRUE(client->SendGoodbye().ok());
}

TEST(ServerStats, JournalSectionRecordsIssuedQueries) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  // Distinctive ids make our records findable in the process-global
  // journal, which other tests in this binary also feed.
  const uint64_t kBaseId = 0x9000000000000000ull;
  std::vector<uint64_t> expected_tuples;
  for (uint64_t i = 0; i < 4; ++i) {
    QueryRequest request;
    request.table = "orders";
    request.query = RangeOn(0, 0, i);
    ASSERT_TRUE(client->SendQuery(kBaseId + i, request).ok());
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    EXPECT_EQ(response->request_id, kBaseId + i);
    expected_tuples.push_back(response->tuples.size());
  }

  auto stats = client->FetchStats(kStatsSectionJournal);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->sections, kStatsSectionJournal);
  EXPECT_TRUE(stats->metrics.counters.empty());
  EXPECT_TRUE(stats->metrics.histograms.empty());

  size_t matched = 0;
  for (const auto& record : stats->journal) {
    if (record.request_id < kBaseId || record.request_id >= kBaseId + 4) {
      continue;
    }
    const uint64_t i = record.request_id - kBaseId;
    EXPECT_EQ(record.table_name(), "orders");
    EXPECT_EQ(record.wire_status, 0u);  // wire code for OK
    EXPECT_EQ(record.reason,
              static_cast<uint8_t>(obs::QueryJournal::Reason::kNone));
    EXPECT_EQ(record.tuples, expected_tuples[i]);
    ++matched;
  }
  EXPECT_EQ(matched, 4u);
  EXPECT_TRUE(client->SendGoodbye().ok());
}

TEST(ServerStats, FetchBothSectionsAtOnce) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(0, 0, 2);
  ASSERT_TRUE(client->Query(request).ok());

  auto stats = client->FetchStats(kStatsSectionMetrics | kStatsSectionJournal);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->sections, kStatsSectionMetrics | kStatsSectionJournal);
  EXPECT_FALSE(stats->metrics.counters.empty());
  EXPECT_FALSE(stats->journal.empty());
  EXPECT_TRUE(client->SendGoodbye().ok());
}

TEST(ServerStats, ExplainOverWireMatchesInProcessTrace) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  const ConjunctiveQuery query = RangeOn(1, 2, 9);

  // Warm both paths once so the traced runs see identical cache state.
  QueryRequest warm;
  warm.table = "orders";
  warm.query = query;
  ASSERT_TRUE(client->Query(warm).ok());
  fixture.DirectSelect(query);

  // Traced over the wire.
  QueryRequest traced = warm;
  traced.flags = kQueryFlagCollectTrace;
  ASSERT_TRUE(client->SendQuery(71, traced).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  ASSERT_TRUE(response->has_trace);
  ASSERT_FALSE(response->trace.spans().empty());

  // Traced in process: the same Select the server runs.
  QueryStats stats;
  stats.collect_trace = true;
  auto direct = fixture.db().Select("orders", query, nullptr, &stats);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_NE(stats.trace, nullptr);

  // The acceptance bar: same span set either way.
  EXPECT_EQ(SpanNames(response->trace), SpanNames(*stats.trace));
  // And the wire result itself still matches ground truth.
  EXPECT_EQ(response->tuples, *direct);
  EXPECT_TRUE(client->SendGoodbye().ok());
}

TEST(ServerStats, QueryWithoutTraceFlagHasNoTrailer) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(0, 0, 1);
  ASSERT_TRUE(client->SendQuery(5, request).ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok());
  EXPECT_FALSE(response->has_trace);
  EXPECT_TRUE(response->trace.spans().empty());
  EXPECT_TRUE(client->SendGoodbye().ok());
}

TEST(ServerStats, MalformedStatsPayloadIsATypedError) {
  ServerFixture fixture;

  {  // Truncated payload.
    RawConn conn = RawConn::Connect(fixture.port());
    ASSERT_TRUE(conn.valid());
    conn.Handshake();
    conn.SendFrame(Opcode::kStats, 7, std::string("\x01", 1));
    Status error = conn.ReadErrorFor(7);
    EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(conn.ServerClosed());
  }
  {  // Zero sections: asks for nothing, which is a caller bug.
    RawConn conn = RawConn::Connect(fixture.port());
    ASSERT_TRUE(conn.valid());
    conn.Handshake();
    conn.SendFrame(Opcode::kStats, 8, EncodeStatsPayload(0));
    Status error = conn.ReadErrorFor(8);
    EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(conn.ServerClosed());
  }
  {  // Unknown section bit.
    RawConn conn = RawConn::Connect(fixture.port());
    ASSERT_TRUE(conn.valid());
    conn.Handshake();
    conn.SendFrame(Opcode::kStats, 9, EncodeStatsPayload(1u << 31));
    Status error = conn.ReadErrorFor(9);
    EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(conn.ServerClosed());
  }
}

TEST(ServerStats, StatsAnswersInOrderBehindPipelinedQueries) {
  ServerFixture fixture;
  RawConn conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();

  // QUERY then STATS back to back; the STATS_RESULT must not overtake
  // the query's response stream.
  QueryRequest request;
  request.table = "orders";
  request.query = RangeOn(0, 0, 7);
  conn.SendFrame(Opcode::kQuery, 1, EncodeQueryPayload(request));
  conn.SendFrame(Opcode::kStats, 2, EncodeStatsPayload(kStatsSectionMetrics));

  bool saw_result_end = false;
  bool saw_stats_result = false;
  for (int i = 0; i < 1000 && !saw_stats_result; ++i) {
    Result<Frame> frame = conn.ReadOneFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    switch (frame->opcode) {
      case Opcode::kResultChunk:
        EXPECT_EQ(frame->request_id, 1u);
        EXPECT_FALSE(saw_result_end);
        break;
      case Opcode::kResultEnd:
        EXPECT_EQ(frame->request_id, 1u);
        saw_result_end = true;
        break;
      case Opcode::kStatsResult: {
        EXPECT_EQ(frame->request_id, 2u);
        EXPECT_TRUE(saw_result_end)
            << "STATS_RESULT overtook the pipelined query";
        saw_stats_result = true;
        uint32_t sections = 0;
        obs::MetricsSnapshot metrics;
        std::vector<obs::QueryJournal::Record> journal;
        Status parsed = ParseStatsResultPayload(Slice(frame->payload),
                                                &sections, &metrics, &journal);
        EXPECT_TRUE(parsed.ok()) << parsed.ToString();
        EXPECT_EQ(sections, kStatsSectionMetrics);
        break;
      }
      default:
        FAIL() << "unexpected opcode "
               << static_cast<unsigned>(frame->opcode);
    }
  }
  EXPECT_TRUE(saw_result_end);
  EXPECT_TRUE(saw_stats_result);
}

}  // namespace
}  // namespace avqdb::server
