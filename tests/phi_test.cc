#include "src/ordinal/phi.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace avqdb {
namespace {

using mixed_radix::Digits;

TEST(Phi, MatchesHandComputation) {
  // Eq 2.2 on the paper's domains (8, 16, 64, 64, 64).
  Digits radices = {8, 16, 64, 64, 64};
  EXPECT_EQ(static_cast<uint64_t>(Phi(radices, {0, 0, 0, 0, 0}).value()), 0u);
  EXPECT_EQ(static_cast<uint64_t>(Phi(radices, {0, 0, 0, 0, 1}).value()), 1u);
  EXPECT_EQ(static_cast<uint64_t>(Phi(radices, {0, 0, 0, 1, 0}).value()),
            64u);
  EXPECT_EQ(static_cast<uint64_t>(Phi(radices, {1, 0, 0, 0, 0}).value()),
            16u * 64 * 64 * 64);
  EXPECT_EQ(static_cast<uint64_t>(Phi(radices, {7, 15, 63, 63, 63}).value()),
            33554431u);  // ||R|| - 1
}

TEST(Phi, SpaceSize) {
  EXPECT_EQ(static_cast<uint64_t>(SpaceSize({8, 16, 64, 64, 64}).value()),
            33554432u);
  EXPECT_EQ(static_cast<uint64_t>(SpaceSize({1}).value()), 1u);
  EXPECT_TRUE(SpaceSize({0}).status().IsInvalidArgument());
}

TEST(Phi, SpaceSizeOverflow) {
  // 3 radices of 2^63 -> 2^189 > 2^128.
  Digits radices = {1ull << 63, 1ull << 63, 1ull << 63};
  EXPECT_TRUE(SpaceSize(radices).status().IsOutOfRange());
  EXPECT_TRUE(Phi(radices, {0, 0, 0}).status().IsOutOfRange());
}

TEST(Phi, RejectsInvalidDigits) {
  Digits radices = {8, 16};
  EXPECT_TRUE(Phi(radices, {8, 0}).status().IsOutOfRange());
  EXPECT_TRUE(Phi(radices, {0}).status().IsInvalidArgument());
}

TEST(Phi, InverseRejectsOutOfSpace) {
  Digits radices = {4, 4};
  EXPECT_TRUE(PhiInverse(radices, 16).status().IsOutOfRange());
  EXPECT_TRUE(PhiInverse(radices, 15).ok());
}

TEST(Phi, BijectionOverSmallSpace) {
  Digits radices = {3, 5, 2};
  for (uint64_t e = 0; e < 30; ++e) {
    auto tuple = PhiInverse(radices, e);
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ(static_cast<uint64_t>(Phi(radices, tuple.value()).value()), e);
  }
}

TEST(Phi, RandomizedRoundTripLargeSpace) {
  Digits radices = {1000003, 999983, 524288, 100000};
  Random rng(42);
  for (int i = 0; i < 300; ++i) {
    Digits tuple(radices.size());
    for (size_t d = 0; d < radices.size(); ++d) {
      tuple[d] = rng.Uniform(radices[d]);
    }
    auto phi = Phi(radices, tuple);
    ASSERT_TRUE(phi.ok());
    auto back = PhiInverse(radices, phi.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), tuple);
  }
}

TEST(Phi, U128ToString) {
  EXPECT_EQ(U128ToString(0), "0");
  EXPECT_EQ(U128ToString(14830051), "14830051");
  u128 big = static_cast<u128>(1) << 100;
  EXPECT_EQ(U128ToString(big), "1267650600228229401496703205376");
}

}  // namespace
}  // namespace avqdb
