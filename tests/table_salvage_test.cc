// Salvage (repair-mode load) and metadata-slot recovery tests: corrupt
// data blocks are quarantined with accurate φ-range loss bounds, torn
// commits fall back to the older metadata slot, and legacy v1 images load
// and upgrade to v2 through Commit().

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/db/block_codecs.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/schema/schema_io.h"
#include "src/storage/block_device.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;

class TableSalvageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = testing::PaperShapeSchema();
    // Unique per test case: ctest runs each case as its own process, so a
    // shared filename races when the suite runs with -j.
    path_ = ::testing::TempDir() + "avqdb_salvage_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".avqt";
    std::remove(path_.c_str());

    MemBlockDevice device(kBlockSize);
    auto table = Table::CreateAvq(schema_, &device).value();
    auto tuples = testing::RandomTuples(*schema_, 400, 0x5a17a9eULL);
    std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
    baseline_.assign(unique.begin(), unique.end());
    ASSERT_TRUE(table->BulkLoad(baseline_).ok());
    ASSERT_TRUE(SaveTable(*table, path_).ok());
    // The saved image is [slot A][slot B][data blocks...].
    FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    num_data_blocks_ = static_cast<size_t>(std::ftell(f)) / kBlockSize - 2;
    std::fclose(f);
    ASSERT_GE(num_data_blocks_, 4u) << "test needs a multi-block table";
    codec_options_ = table->codec().options();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Reads one raw block of the saved image.
  std::string ReadFileBlock(BlockId block) {
    FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out(kBlockSize, '\0');
    EXPECT_EQ(std::fseek(f, static_cast<long>(block * kBlockSize), SEEK_SET),
              0);
    EXPECT_EQ(std::fread(out.data(), 1, kBlockSize, f), kBlockSize);
    std::fclose(f);
    return out;
  }

  void FlipFileByte(BlockId block, size_t offset) {
    FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long pos = static_cast<long>(block * kBlockSize + offset);
    ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, pos, SEEK_SET), 0);
    ASSERT_NE(std::fputc(c ^ 0x40, f), EOF);
    std::fclose(f);
  }

  // Tuples held by one data block of the freshly saved image (physical
  // ids 2..k+1 in φ order).
  std::vector<OrdinalTuple> DecodeFileBlock(BlockId block) {
    auto codec = MakeAvqBlockCodec(schema_, codec_options_);
    return codec->DecodeBlock(Slice(ReadFileBlock(block))).value();
  }

  SchemaPtr schema_;
  std::string path_;
  std::vector<OrdinalTuple> baseline_;
  size_t num_data_blocks_ = 0;
  CodecOptions codec_options_;
};

TEST_F(TableSalvageTest, RepairQuarantinesCorruptBlockWithAccurateBounds) {
  // Victim: a middle data block. Record its contents and its φ-order
  // neighbors before corrupting it.
  const BlockId victim = 4;
  const auto lost = DecodeFileBlock(victim);
  const auto before = DecodeFileBlock(victim - 1);
  const auto after = DecodeFileBlock(victim + 1);
  FlipFileByte(victim, 24);  // inside the payload; breaks the block CRC

  // A strict load refuses the image.
  EXPECT_TRUE(LoadTable(path_, LoadOptions{}).status().IsCorruption());

  // A repair load quarantines exactly the victim and keeps the rest.
  RepairReport report;
  LoadOptions options;
  options.repair = true;
  options.report = &report;
  auto loaded = LoadTable(path_, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(report.version, 2u);
  EXPECT_EQ(report.blocks_scanned, num_data_blocks_);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].physical, victim);
  EXPECT_FALSE(report.quarantined[0].error.empty());
  EXPECT_EQ(report.tuples_expected, baseline_.size());
  EXPECT_EQ(report.tuples_recovered, baseline_.size() - lost.size());
  // Loss bounds: the preceding survivor's last tuple and the following
  // survivor's first tuple.
  EXPECT_EQ(report.quarantined[0].lost_after,
            TupleToString(before.back()));
  EXPECT_EQ(report.quarantined[0].lost_before,
            TupleToString(after.front()));
  EXPECT_NE(report.ToString().find("quarantined"), std::string::npos);

  // The salvaged table holds exactly the survivors, in φ order.
  std::set<OrdinalTuple> expected(baseline_.begin(), baseline_.end());
  for (const auto& t : lost) expected.erase(t);
  auto scanned = loaded.value().table->ScanAll().value();
  EXPECT_EQ(std::set<OrdinalTuple>(scanned.begin(), scanned.end()), expected);
}

TEST_F(TableSalvageTest, CommitAfterRepairDropsQuarantineDurably) {
  const BlockId victim = 3;
  const auto lost = DecodeFileBlock(victim);
  FlipFileByte(victim, 30);

  RepairReport report;
  LoadOptions options;
  options.repair = true;
  options.report = &report;
  {
    auto loaded = LoadTable(path_, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(report.quarantined.size(), 1u);
    ASSERT_TRUE(loaded.value().Commit().ok());
  }

  // After the repair commit the image is strictly loadable again, minus
  // the quarantined tuples.
  auto reopened = LoadTable(path_, LoadOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().table->num_tuples(),
            baseline_.size() - lost.size());
}

TEST_F(TableSalvageTest, QuarantineAtTheEdgesReportsInfiniteBounds) {
  FlipFileByte(2, 24);  // first data block
  FlipFileByte(static_cast<BlockId>(num_data_blocks_) + 1, 24);  // last

  RepairReport report;
  LoadOptions options;
  options.repair = true;
  options.report = &report;
  auto loaded = LoadTable(path_, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(report.quarantined.size(), 2u);
  EXPECT_EQ(report.quarantined.front().lost_after, "-inf");
  EXPECT_EQ(report.quarantined.back().lost_before, "+inf");
}

TEST_F(TableSalvageTest, TornCommitFallsBackToOlderMetadataSlot) {
  // Commit once so slot B holds sequence 2.
  OrdinalTuple extra{7, 15, 63, 63, 59};
  {
    auto loaded = LoadTable(path_, LoadOptions{}).value();
    if (loaded.table->Contains(extra).value()) {
      ASSERT_TRUE(loaded.table->Delete(extra).ok());
    } else {
      ASSERT_TRUE(loaded.table->Insert(extra).ok());
    }
    ASSERT_TRUE(loaded.Commit().ok());
    EXPECT_EQ(loaded.commit_seq, 2u);
    EXPECT_EQ(loaded.active_slot, 1u);
  }
  // Tear the newer slot: a normal load must fall back to sequence 1 —
  // the pristine baseline image.
  FlipFileByte(1, 40);
  auto loaded = LoadTable(path_, LoadOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().commit_seq, 1u);
  EXPECT_EQ(loaded.value().active_slot, 0u);
  EXPECT_EQ(loaded.value().table->num_tuples(), baseline_.size());

  // A repair load surfaces the fallback in its report.
  RepairReport report;
  LoadOptions repair;
  repair.repair = true;
  repair.report = &report;
  ASSERT_TRUE(LoadTable(path_, repair).ok());
  EXPECT_TRUE(report.metadata_slot_fallback);
  EXPECT_EQ(report.commit_seq, 1u);
}

TEST_F(TableSalvageTest, BothMetadataSlotsCorruptIsFatal) {
  FlipFileByte(0, 40);
  auto loaded = LoadTable(path_, LoadOptions{});
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
  // Repair mode cannot help without any readable metadata.
  LoadOptions repair;
  repair.repair = true;
  EXPECT_TRUE(LoadTable(path_, repair).status().IsCorruption());
}

TEST_F(TableSalvageTest, LegacyV1ImageLoadsAndCommitUpgradesToV2) {
  // Hand-write a v1 image: single metadata block 0, data from block 1.
  CodecOptions options;
  options.block_size = kBlockSize;
  auto codec = MakeAvqBlockCodec(schema_, options);
  std::vector<OrdinalTuple> tuples = {
      {0, 1, 2, 3, 4}, {1, 2, 3, 4, 5}, {2, 3, 4, 5, 6}};
  std::string data_block = codec->EncodeBlock(tuples).value();

  std::string meta;
  PutFixed32(&meta, 0x54515641u);  // "AVQT"
  PutFixed16(&meta, 1u);           // version 1
  meta.push_back('\1');            // AVQ store
  meta.push_back(static_cast<char>(options.variant));
  meta.push_back(static_cast<char>(options.representative));
  meta.push_back(options.run_length_zeros ? '\1' : '\0');
  meta.push_back(options.checksum ? '\1' : '\0');
  meta.push_back('\0');  // pad
  PutFixed32(&meta, static_cast<uint32_t>(kBlockSize));
  PutFixed32(&meta, 1u);  // one data block (implicitly id 1)
  PutFixed64(&meta, tuples.size());
  std::string schema_bytes;
  EncodeSchema(*schema_, &schema_bytes);
  PutLengthPrefixed(&meta, Slice(schema_bytes));
  PutFixed32(&meta, crc32c::Mask(crc32c::Value(Slice(meta))));
  ASSERT_LE(meta.size(), kBlockSize);
  meta.resize(kBlockSize, '\0');

  const std::string v1_path = ::testing::TempDir() + "avqdb_salvage_v1.avqt";
  std::remove(v1_path.c_str());
  FILE* f = std::fopen(v1_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(meta.data(), 1, meta.size(), f), meta.size());
  ASSERT_EQ(std::fwrite(data_block.data(), 1, data_block.size(), f),
            data_block.size());
  std::fclose(f);

  {
    auto loaded = LoadTable(v1_path, LoadOptions{});
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().version, 1u);
    EXPECT_EQ(loaded.value().staged_device, nullptr);  // in-place legacy
    EXPECT_EQ(loaded.value().table->num_tuples(), tuples.size());
    // Commit() upgrades the file to the v2 two-slot format atomically.
    ASSERT_TRUE(loaded.value().Commit().ok());
  }
  auto upgraded = LoadTable(v1_path, LoadOptions{});
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  EXPECT_EQ(upgraded.value().version, 2u);
  EXPECT_NE(upgraded.value().staged_device, nullptr);
  EXPECT_EQ(upgraded.value().table->ScanAll().value(), tuples);
  std::remove(v1_path.c_str());
}

}  // namespace
}  // namespace avqdb
