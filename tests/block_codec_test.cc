// Block encoder/decoder behaviour plus randomized round-trip sweeps over
// schemas × codec variants × block sizes, and corruption injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/avq/block_decoder.h"
#include "src/avq/block_encoder.h"
#include "src/common/random.h"
#include "src/common/slice.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

std::vector<OrdinalTuple> SortedRandomTuples(const Schema& schema,
                                             size_t count, uint64_t seed) {
  auto tuples = testing::RandomTuples(schema, count, seed);
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return tuples;
}

TEST(BlockEncoder, SingleTupleBlock) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  BlockEncoder encoder(schema, options);
  ASSERT_TRUE(encoder.TryAdd({1, 2, 3, 4, 5}).value());
  EXPECT_EQ(encoder.tuple_count(), 1u);
  EXPECT_EQ(encoder.encoded_size(), kBlockHeaderSize + 5);
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value().size(), options.block_size);
  auto decoded = DecodeBlock(*schema, Slice(block.value()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().tuples,
            (std::vector<OrdinalTuple>{{1, 2, 3, 4, 5}}));
}

TEST(BlockEncoder, FinishOnEmptyFails) {
  BlockEncoder encoder(testing::PaperShapeSchema(), CodecOptions{});
  EXPECT_TRUE(encoder.Finish().status().IsInvalidArgument());
}

TEST(BlockEncoder, RejectsOutOfOrderTuples) {
  BlockEncoder encoder(testing::PaperShapeSchema(), CodecOptions{});
  ASSERT_TRUE(encoder.TryAdd({3, 0, 0, 0, 0}).value());
  EXPECT_TRUE(encoder.TryAdd({2, 0, 0, 0, 0}).status().IsInvalidArgument());
}

TEST(BlockEncoder, AcceptsDuplicates) {
  auto schema = testing::PaperShapeSchema();
  BlockEncoder encoder(schema, CodecOptions{});
  ASSERT_TRUE(encoder.TryAdd({1, 2, 3, 4, 5}).value());
  ASSERT_TRUE(encoder.TryAdd({1, 2, 3, 4, 5}).value());
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());
  auto decoded = DecodeBlock(*schema, Slice(block.value()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().tuples.size(), 2u);
  EXPECT_EQ(decoded.value().tuples[0], decoded.value().tuples[1]);
}

TEST(BlockEncoder, RejectsInvalidTuple) {
  BlockEncoder encoder(testing::PaperShapeSchema(), CodecOptions{});
  EXPECT_TRUE(encoder.TryAdd({8, 0, 0, 0, 0}).status().IsOutOfRange());
  EXPECT_TRUE(encoder.TryAdd({0, 0}).status().IsInvalidArgument());
}

TEST(BlockEncoder, FillsUntilCapacity) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.block_size = 128;  // tiny blocks to force refusal quickly
  BlockEncoder encoder(schema, options);
  auto tuples = SortedRandomTuples(*schema, 200, 77);
  size_t added = 0;
  for (const auto& t : tuples) {
    auto ok = encoder.TryAdd(t);
    ASSERT_TRUE(ok.ok());
    if (!ok.value()) break;
    ++added;
  }
  EXPECT_GT(added, 1u);
  EXPECT_LT(added, tuples.size());
  EXPECT_LE(encoder.encoded_size(), options.block_size);
  // Once full, it stays full for this tuple.
  EXPECT_FALSE(encoder.TryAdd(tuples[added]).value());
  // But Finish then reset allows reuse.
  ASSERT_TRUE(encoder.Finish().ok());
  EXPECT_TRUE(encoder.empty());
  EXPECT_TRUE(encoder.TryAdd(tuples[added]).value());
}

TEST(BlockEncoder, EncodedSizeMatchesPayload) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.checksum = false;
  BlockEncoder encoder(schema, options);
  auto tuples = SortedRandomTuples(*schema, 40, 3);
  for (const auto& t : tuples) ASSERT_TRUE(encoder.TryAdd(t).value());
  const size_t predicted = encoder.encoded_size();
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());
  auto header = BlockHeader::DecodeFrom(Slice(block.value()));
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(kBlockHeaderSize + header.value().payload_size, predicted);
}

TEST(BlockEncoder, MiddleRepresentativeIsMedian) {
  auto schema = testing::PaperShapeSchema();
  BlockEncoder encoder(schema, CodecOptions{});
  for (uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(encoder.TryAdd({0, 0, 0, 0, i}).value());
  }
  EXPECT_EQ(encoder.representative_index(), 3u);
}

TEST(BlockDecoder, RejectsGarbage) {
  auto schema = testing::PaperShapeSchema();
  std::string garbage(8192, '\xAB');
  EXPECT_TRUE(DecodeBlock(*schema, Slice(garbage)).status().IsCorruption());
  std::string tiny(4, '\0');
  EXPECT_TRUE(DecodeBlock(*schema, Slice(tiny)).status().IsCorruption());
}

TEST(BlockDecoder, DetectsPayloadCorruptionViaChecksum) {
  auto schema = testing::PaperShapeSchema();
  BlockEncoder encoder(schema, CodecOptions{});
  auto tuples = SortedRandomTuples(*schema, 50, 9);
  for (const auto& t : tuples) ASSERT_TRUE(encoder.TryAdd(t).value());
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());
  // Flip one payload byte at a time; every flip must be caught.
  for (size_t offset = kBlockHeaderSize; offset < kBlockHeaderSize + 40;
       offset += 5) {
    std::string corrupted = block.value();
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
    auto decoded = DecodeBlock(*schema, Slice(corrupted));
    EXPECT_TRUE(decoded.status().IsCorruption()) << "offset " << offset;
  }
}

TEST(BlockDecoder, CorruptHeaderFieldsRejected) {
  auto schema = testing::PaperShapeSchema();
  BlockEncoder encoder(schema, CodecOptions{});
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(encoder.TryAdd({0, 0, 0, 0, i}).value());
  }
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());

  {
    std::string corrupted = block.value();
    corrupted[0] = '\x00';  // magic
    EXPECT_TRUE(DecodeBlock(*schema, Slice(corrupted)).status().IsCorruption());
  }
  {
    std::string corrupted = block.value();
    corrupted[2] = '\x07';  // variant
    EXPECT_TRUE(DecodeBlock(*schema, Slice(corrupted)).status().IsCorruption());
  }
  {
    std::string corrupted = block.value();
    corrupted[4] = '\x00';  // tuple count -> 0
    corrupted[5] = '\x00';
    EXPECT_TRUE(DecodeBlock(*schema, Slice(corrupted)).status().IsCorruption());
  }
  {
    std::string corrupted = block.value();
    corrupted[6] = '\x09';  // rep index beyond count
    EXPECT_TRUE(DecodeBlock(*schema, Slice(corrupted)).status().IsCorruption());
  }
}

TEST(BlockDecoder, TruncatedStreamWithoutChecksumRejected) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;
  options.checksum = false;
  BlockEncoder encoder(schema, options);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(encoder.TryAdd({0, 0, 0, i, 0}).value());
  }
  auto block = encoder.Finish();
  ASSERT_TRUE(block.ok());
  // Shrink the payload-size field so the stream ends mid-tuple.
  std::string corrupted = block.value();
  corrupted[8] = static_cast<char>(static_cast<uint8_t>(corrupted[8]) - 3);
  EXPECT_TRUE(DecodeBlock(*schema, Slice(corrupted)).status().IsCorruption());
}

// ---- Parameterized round-trip sweep ----

struct CodecCase {
  const char* name;
  std::vector<uint64_t> cardinalities;
  CodecVariant variant;
  bool rle;
  RepresentativeChoice rep;
  size_t block_size;
};

class BlockCodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(BlockCodecRoundTrip, ManyBlocksRoundTrip) {
  const CodecCase& c = GetParam();
  auto schema = testing::IntSchema(c.cardinalities);
  CodecOptions options;
  options.variant = c.variant;
  options.run_length_zeros = c.rle;
  options.representative = c.rep;
  options.block_size = c.block_size;
  ASSERT_TRUE(options.Validate(schema->tuple_width()).ok());

  auto tuples = SortedRandomTuples(*schema, 2000, 0xbeef);
  BlockEncoder encoder(schema, options);
  std::vector<OrdinalTuple> decoded_all;
  size_t i = 0;
  while (i < tuples.size()) {
    auto added = encoder.TryAdd(tuples[i]);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    if (added.value()) {
      ++i;
      continue;
    }
    auto block = encoder.Finish();
    ASSERT_TRUE(block.ok());
    auto decoded = DecodeBlock(*schema, Slice(block.value()));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    for (auto& t : decoded.value().tuples) decoded_all.push_back(std::move(t));
  }
  if (!encoder.empty()) {
    auto block = encoder.Finish();
    ASSERT_TRUE(block.ok());
    auto decoded = DecodeBlock(*schema, Slice(block.value()));
    ASSERT_TRUE(decoded.ok());
    for (auto& t : decoded.value().tuples) decoded_all.push_back(std::move(t));
  }
  EXPECT_EQ(decoded_all, tuples);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockCodecRoundTrip,
    ::testing::Values(
        CodecCase{"paper_chain_rle", {8, 16, 64, 64, 64},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kMiddle, 1024},
        CodecCase{"paper_chain_norle", {8, 16, 64, 64, 64},
                  CodecVariant::kChainDelta, false,
                  RepresentativeChoice::kMiddle, 1024},
        CodecCase{"paper_repdelta_rle", {8, 16, 64, 64, 64},
                  CodecVariant::kRepresentativeDelta, true,
                  RepresentativeChoice::kMiddle, 1024},
        CodecCase{"paper_repdelta_norle", {8, 16, 64, 64, 64},
                  CodecVariant::kRepresentativeDelta, false,
                  RepresentativeChoice::kMiddle, 1024},
        CodecCase{"first_rep_chain", {8, 16, 64, 64, 64},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kFirst, 1024},
        CodecCase{"first_rep_repdelta", {8, 16, 64, 64, 64},
                  CodecVariant::kRepresentativeDelta, true,
                  RepresentativeChoice::kFirst, 1024},
        CodecCase{"wide_digits", {1u << 20, 3, 65536, 100, 1u << 18},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kMiddle, 4096},
        CodecCase{"single_attribute", {1000000},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kMiddle, 512},
        CodecCase{"binary_attrs", {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kMiddle, 256},
        CodecCase{"large_blocks", {8, 16, 64, 64, 64},
                  CodecVariant::kChainDelta, true,
                  RepresentativeChoice::kMiddle, 8192}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace avqdb
