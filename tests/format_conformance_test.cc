// Pins the on-disk byte layouts documented in docs/FORMAT.md. If any of
// these tests fail, either the format changed (bump the version and the
// doc) or a refactor silently broke compatibility.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/avq/block_encoder.h"
#include "src/common/coding.h"
#include "src/db/block_codecs.h"
#include "src/db/table_io.h"
#include "src/index/bptree.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

TEST(FormatConformance, AvqBlockHeader) {
  auto schema = testing::PaperShapeSchema();
  CodecOptions options;  // chain deltas, RLE, checksum
  BlockEncoder encoder(schema, options);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(encoder.TryAdd({0, 0, 0, 1, i}).value());
  }
  auto block = encoder.Finish().value();
  const auto* b = reinterpret_cast<const uint8_t*>(block.data());
  EXPECT_EQ(DecodeFixed16(b), 0x5156u);  // "VQ"
  EXPECT_EQ(b[2], 0u);                   // chain-delta
  EXPECT_EQ(b[3], 0x3u);                 // checksum | RLE
  EXPECT_EQ(DecodeFixed16(b + 4), 5u);   // tuple count
  EXPECT_EQ(DecodeFixed16(b + 6), 2u);   // median of 5 -> index 2
  // Payload: 5 (rep) + 4 deltas of (1 count + 1 suffix) = 13 bytes.
  EXPECT_EQ(DecodeFixed32(b + 8), 13u);
  EXPECT_NE(DecodeFixed32(b + 12), 0u);  // masked CRC present
  // Representative image immediately follows the 16-byte header.
  EXPECT_EQ(b[16], 0u);
  EXPECT_EQ(b[19], 1u);
  EXPECT_EQ(b[20], 2u);  // a5 of the median tuple
}

TEST(FormatConformance, RawBlockHeaderAndPayload) {
  auto schema = testing::PaperShapeSchema();
  auto codec = MakeRawBlockCodec(schema, 128);
  auto block =
      codec->EncodeBlock({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}}).value();
  const auto* b = reinterpret_cast<const uint8_t*>(block.data());
  EXPECT_EQ(DecodeFixed16(b), 0x5752u);  // "RW"
  EXPECT_EQ(b[3], 0x1u);                 // checksum flag
  EXPECT_EQ(DecodeFixed16(b + 4), 2u);   // count
  EXPECT_EQ(DecodeFixed32(b + 8), 10u);  // payload = 2 * m
  // Fixed-width big-endian digit images start at offset 16.
  const uint8_t expected[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(b[16 + i], expected[i]) << i;
  }
}

TEST(FormatConformance, BPlusTreeLeafNode) {
  MemBlockDevice device(128);
  Pager pager(&device);
  auto tree = BPlusTree::Create(&pager, 8).value();
  std::string key(8, '\0');
  key[7] = 0x2a;
  ASSERT_TRUE(tree->Insert(Slice(key), 0x1122334455667788ull).ok());
  std::string raw;
  ASSERT_TRUE(device.Read(tree->root(), &raw).ok());
  const auto* b = reinterpret_cast<const uint8_t*>(raw.data());
  EXPECT_EQ(DecodeFixed16(b), 0x4254u);       // "BT"
  EXPECT_EQ(b[2], 0u);                        // leaf
  EXPECT_EQ(DecodeFixed16(b + 4), 1u);        // one entry
  EXPECT_EQ(DecodeFixed32(b + 8), 0xffffffffu);   // no next leaf
  EXPECT_EQ(DecodeFixed32(b + 12), 0xffffffffu);  // no prev leaf
  // Entry: 8-byte key then u64 value.
  EXPECT_EQ(b[16 + 7], 0x2au);
  EXPECT_EQ(DecodeFixed64(b + 24), 0x1122334455667788ull);
}

TEST(FormatConformance, TableImageMetadataBlock) {
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice device(512);
  auto table = Table::CreateAvq(schema, &device).value();
  ASSERT_TRUE(table->Insert({1, 2, 3, 4, 5}).ok());
  const std::string path = "/tmp/avqdb_format_conformance.avqt";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveTable(*table, path).ok());

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint8_t image[512 * 3];
  ASSERT_EQ(std::fread(image, 1, sizeof(image), f), sizeof(image));
  std::fclose(f);
  std::remove(path.c_str());

  const uint8_t* head = image;  // metadata slot A = block 0
  EXPECT_EQ(DecodeFixed32(head), 0x54515641u);  // "AVQT"
  EXPECT_EQ(DecodeFixed16(head + 4), 2u);       // version
  EXPECT_EQ(head[6], 1u);                       // AVQ store
  EXPECT_EQ(head[7], 0u);                       // chain-delta
  EXPECT_EQ(head[8], 0u);                       // median representative
  EXPECT_EQ(head[9], 1u);                       // RLE
  EXPECT_EQ(head[10], 1u);                      // checksums
  EXPECT_EQ(DecodeFixed32(head + 12), 512u);    // block size
  EXPECT_EQ(DecodeFixed32(head + 16), 1u);      // data blocks
  EXPECT_EQ(DecodeFixed64(head + 20), 1u);      // tuples
  EXPECT_EQ(DecodeFixed64(head + 28), 1u);      // commit sequence

  // Metadata slot B (block 1) is zeroed at save time — it fails the magic
  // check, so the loader knows no in-place commit has happened yet.
  for (size_t i = 512; i < 1024; ++i) {
    ASSERT_EQ(image[i], 0u) << "slot B byte " << i;
  }
  // The first data block (physical id 2) starts with the AVQ block magic.
  EXPECT_EQ(DecodeFixed16(image + 1024), 0x5156u);  // "VQ"
}

TEST(FormatConformance, ZigZagEncoding) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t v : {int64_t{0}, int64_t{-40}, int64_t{50},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

}  // namespace
}  // namespace avqdb
