#include "src/db/join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

std::vector<OrdinalTuple> BruteForceJoin(
    const std::vector<OrdinalTuple>& left, size_t left_attr,
    const std::vector<OrdinalTuple>& right, size_t right_attr) {
  std::vector<OrdinalTuple> out;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (l[left_attr] == r[right_attr]) {
        OrdinalTuple joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        out.push_back(std::move(joined));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  return out;
}

struct JoinFixture {
  JoinFixture() : left_device(512), right_device(512) {
    // Left: (dept, emp) pairs; right: (dept, building, floor).
    left_schema = testing::IntSchema({8, 512});
    right_schema = testing::IntSchema({8, 16, 8});
    RelationSpec ls;
    ls.explicit_domain_sizes = {8, 512};
    ls.num_attributes = 2;
    ls.num_tuples = 400;
    ls.dedupe = true;
    ls.seed = 11;
    left_tuples = GenerateRelation(ls).value().tuples;
    RelationSpec rs;
    rs.explicit_domain_sizes = {8, 16, 8};
    rs.num_attributes = 3;
    rs.num_tuples = 120;
    rs.dedupe = true;
    rs.seed = 12;
    right_tuples = GenerateRelation(rs).value().tuples;

    CodecOptions options;
    options.block_size = 512;
    left = Table::CreateAvq(left_schema, &left_device, options).value();
    right = Table::CreateAvq(right_schema, &right_device, options).value();
    AVQDB_CHECK_OK(left->BulkLoad(left_tuples));
    AVQDB_CHECK_OK(right->BulkLoad(right_tuples));
  }

  MemBlockDevice left_device, right_device;
  SchemaPtr left_schema, right_schema;
  std::vector<OrdinalTuple> left_tuples, right_tuples;
  std::unique_ptr<Table> left, right;
};

TEST(Join, MergeOnClusteredAttributes) {
  JoinFixture f;
  JoinStats stats;
  auto joined = ExecuteEquiJoin(*f.left, 0, *f.right, 0,
                                JoinStrategy::kMerge, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined.value(),
            BruteForceJoin(f.left_tuples, 0, f.right_tuples, 0));
  EXPECT_EQ(stats.strategy, JoinStrategy::kMerge);
  EXPECT_GT(stats.output_tuples, 0u);
  EXPECT_GT(stats.left_blocks_read, 0u);
}

TEST(Join, HashOnArbitraryAttributes) {
  JoinFixture f;
  JoinStats stats;
  // Join left.emp-ish attr 1 against right.floor attr 2 (both small
  // overlapping ordinal spaces only where values coincide).
  auto joined = ExecuteEquiJoin(*f.left, 0, *f.right, 2,
                                JoinStrategy::kHash, &stats);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value(),
            BruteForceJoin(f.left_tuples, 0, f.right_tuples, 2));
  EXPECT_EQ(stats.strategy, JoinStrategy::kHash);
}

TEST(Join, IndexNestedLoop) {
  JoinFixture f;
  ASSERT_TRUE(f.right->CreateSecondaryIndex(2).ok());
  JoinStats stats;
  auto joined = ExecuteEquiJoin(*f.left, 0, *f.right, 2,
                                JoinStrategy::kIndexNestedLoop, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined.value(),
            BruteForceJoin(f.left_tuples, 0, f.right_tuples, 2));
  EXPECT_EQ(stats.strategy, JoinStrategy::kIndexNestedLoop);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(Join, AllStrategiesAgree) {
  JoinFixture f;
  ASSERT_TRUE(f.right->CreateSecondaryIndex(0).ok());
  auto merge =
      ExecuteEquiJoin(*f.left, 0, *f.right, 0, JoinStrategy::kMerge, nullptr);
  auto hash =
      ExecuteEquiJoin(*f.left, 0, *f.right, 0, JoinStrategy::kHash, nullptr);
  auto inl = ExecuteEquiJoin(*f.left, 0, *f.right, 0,
                             JoinStrategy::kIndexNestedLoop, nullptr);
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(inl.ok());
  EXPECT_EQ(merge.value(), hash.value());
  EXPECT_EQ(merge.value(), inl.value());
}

TEST(Join, AutoPrefersMergeWhenLegal) {
  JoinFixture f;
  JoinStats stats;
  ASSERT_TRUE(
      ExecuteEquiJoin(*f.left, 0, *f.right, 0, JoinStrategy::kAuto, &stats)
          .ok());
  EXPECT_EQ(stats.strategy, JoinStrategy::kMerge);
  ASSERT_TRUE(
      ExecuteEquiJoin(*f.left, 1, *f.right, 2, JoinStrategy::kAuto, &stats)
          .ok());
  EXPECT_EQ(stats.strategy, JoinStrategy::kHash);
}

TEST(Join, ErrorCases) {
  JoinFixture f;
  EXPECT_TRUE(ExecuteEquiJoin(*f.left, 9, *f.right, 0, JoinStrategy::kAuto,
                              nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteEquiJoin(*f.left, 1, *f.right, 0, JoinStrategy::kMerge,
                              nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteEquiJoin(*f.left, 0, *f.right, 2,
                              JoinStrategy::kIndexNestedLoop, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(Join, EmptyInputsYieldEmptyOutput) {
  JoinFixture f;
  MemBlockDevice empty_device(512);
  CodecOptions options;
  options.block_size = 512;
  auto empty = Table::CreateAvq(f.right_schema, &empty_device, options).value();
  auto joined =
      ExecuteEquiJoin(*f.left, 0, *empty, 0, JoinStrategy::kAuto, nullptr);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined.value().empty());
}

TEST(Join, SelfJoin) {
  JoinFixture f;
  auto joined =
      ExecuteEquiJoin(*f.left, 0, *f.left, 0, JoinStrategy::kHash, nullptr);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value(),
            BruteForceJoin(f.left_tuples, 0, f.left_tuples, 0));
}

}  // namespace
}  // namespace avqdb
