// AdmissionController coverage: immediate grants, queueing and wakeup on
// release, bounded-queue shedding, deadline-based shedding, cancellation
// while queued, and the pre-expired-deadline taxonomy.

#include "src/db/admission_controller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/db/exec_context.h"

namespace avqdb {
namespace {

using std::chrono::milliseconds;

TEST(AdmissionTest, GrantsUpToMaxConcurrency) {
  AdmissionController controller({.max_concurrency = 2});
  auto first = controller.Admit(nullptr);
  auto second = controller.Admit(nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->holds_slot());
  EXPECT_EQ(controller.in_flight(), 2u);
}

TEST(AdmissionTest, ReleaseWakesAQueuedWaiter) {
  AdmissionController controller(
      {.max_concurrency = 1, .max_queue_depth = 4});
  auto held = controller.Admit(nullptr);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto ticket = controller.Admit(nullptr);
    ASSERT_TRUE(ticket.ok());
    admitted.store(true);
  });
  // Give the waiter time to queue, then free the slot.
  while (controller.waiting() == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  *held = AdmissionController::Ticket();  // release
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionTest, FullQueueShedsImmediately) {
  AdmissionController controller(
      {.max_concurrency = 1, .max_queue_depth = 0});
  auto held = controller.Admit(nullptr);
  ASSERT_TRUE(held.ok());
  auto shed = controller.Admit(nullptr);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
}

TEST(AdmissionTest, DeadlineExpiresWhileQueuedSheds) {
  AdmissionController controller(
      {.max_concurrency = 1, .max_queue_depth = 4});
  auto held = controller.Admit(nullptr);
  ASSERT_TRUE(held.ok());

  ExecContext ctx;
  ctx.SetDeadlineAfter(milliseconds(30));
  auto shed = controller.Admit(&ctx);  // blocks ~30ms, then sheds
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  EXPECT_EQ(controller.waiting(), 0u);
}

TEST(AdmissionTest, PreExpiredDeadlineIsTheRequestsOwnFailure) {
  AdmissionController controller({.max_concurrency = 1});
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  auto result = controller.Admit(&ctx);
  ASSERT_FALSE(result.ok());
  // Not shed: the request was dead on arrival, not a victim of load.
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(AdmissionTest, CancelledWhileQueuedReturnsCancelled) {
  AdmissionController controller(
      {.max_concurrency = 1, .max_queue_depth = 4});
  auto held = controller.Admit(nullptr);
  ASSERT_TRUE(held.ok());

  ExecContext ctx;
  std::thread canceller([&controller, token = ctx.cancellation_token()] {
    while (controller.waiting() == 0) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    token->Cancel();
  });
  auto result = controller.Admit(&ctx);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST(AdmissionTest, TicketReleaseOnDestructionFreesTheSlot) {
  AdmissionController controller({.max_concurrency = 1});
  {
    auto ticket = controller.Admit(nullptr);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(controller.in_flight(), 1u);
  }
  EXPECT_EQ(controller.in_flight(), 0u);
  auto again = controller.Admit(nullptr);
  EXPECT_TRUE(again.ok());
}

TEST(AdmissionTest, MoveTransfersTheSlot) {
  AdmissionController controller({.max_concurrency = 1});
  auto ticket = controller.Admit(nullptr);
  ASSERT_TRUE(ticket.ok());
  AdmissionController::Ticket moved = std::move(*ticket);
  EXPECT_TRUE(moved.holds_slot());
  EXPECT_FALSE(ticket->holds_slot());
  EXPECT_EQ(controller.in_flight(), 1u);
}

TEST(AdmissionTest, ManyThreadsAllEventuallyAdmitted) {
  AdmissionController controller(
      {.max_concurrency = 2, .max_queue_depth = 64});
  std::atomic<size_t> completed{0};
  std::atomic<size_t> peak_in_flight{0};
  std::atomic<size_t> running{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      auto ticket = controller.Admit(nullptr);
      ASSERT_TRUE(ticket.ok());
      const size_t now = running.fetch_add(1) + 1;
      size_t peak = peak_in_flight.load();
      while (now > peak && !peak_in_flight.compare_exchange_weak(peak, now)) {
      }
      std::this_thread::sleep_for(milliseconds(1));
      running.fetch_sub(1);
      completed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 16u);
  EXPECT_LE(peak_in_flight.load(), 2u);
  EXPECT_EQ(controller.in_flight(), 0u);
}

}  // namespace
}  // namespace avqdb
