// MetricsRegistry semantics: instrument arithmetic, power-of-two bucket
// boundaries, handle stability, snapshot ordering, the pinned JSON export
// schema, and a multi-threaded hammer proving updates are race-free (run
// under AVQDB_SANITIZE=thread via tools/run_sanitized_tests.sh).

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metric_names.h"

namespace avqdb::obs {
namespace {

TEST(Counter, AddAndIncrement) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(Gauge, MovesBothWays) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Add(10);
  gauge->Subtract(25);
  EXPECT_EQ(gauge->value(), -15);
  gauge->Set(7);
  EXPECT_EQ(gauge->value(), 7);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});

  // Every value lands in the bucket whose bound brackets it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1ull << 40}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
    }
  }
}

TEST(Histogram, RecordAccumulates) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("test.hist");
  histogram->Record(0);
  histogram->Record(1);
  histogram->Record(5);
  histogram->Record(5);
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_EQ(histogram->sum(), 11u);
  EXPECT_EQ(histogram->bucket(0), 1u);
  EXPECT_EQ(histogram->bucket(1), 1u);
  EXPECT_EQ(histogram->bucket(3), 2u);  // [4, 7]
}

TEST(MetricsRegistry, HandlesAreStableAndDeduplicated) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup.name");
  // Registering many more instruments must not move the first handle.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  Counter* b = registry.GetCounter("dup.name");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(MetricsRegistry, InstancesAreIndependent) {
  MetricsRegistry first;
  MetricsRegistry second;
  first.GetCounter("x")->Add(5);
  EXPECT_EQ(second.GetCounter("x")->value(), 0u);
}

TEST(MetricsRegistry, ResetZeroesKeepingHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(3);
  gauge->Set(-4);
  histogram->Record(100);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->sum(), 0u);
  counter->Increment();  // handle still live
  EXPECT_EQ(counter->value(), 1u);
}

TEST(MetricsRegistry, SnapshotSortsByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(1);
  registry.GetCounter("a.first")->Add(2);
  registry.GetCounter("m.middle")->Add(3);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.middle");
  EXPECT_EQ(snap.counters[2].name, "z.last");
}

TEST(MetricsRegistry, GlobalRegistersLibraryMetrics) {
  // The library's cached handles resolve against Global(); asking for a
  // known name must hand back the same instrument.
  Counter* a = MetricsRegistry::Global().GetCounter(kDeviceReads);
  Counter* b = MetricsRegistry::Global().GetCounter(kDeviceReads);
  EXPECT_EQ(a, b);
}

// The JSON schema is a compatibility surface: bench JSON embeds it and
// external tooling parses it. Any change here is a schema version bump.
TEST(MetricsSnapshot, ToJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("a.b.c")->Add(3);
  registry.GetGauge("g.x")->Set(-2);
  Histogram* histogram = registry.GetHistogram("h.lat");
  histogram->Record(0);
  histogram->Record(1);
  histogram->Record(5);

  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"counters\": {\n"
      "    \"a.b.c\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g.x\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h.lat\": {\"count\": 3, \"sum\": 6, \"buckets\": "
      "[{\"le\": 0, \"count\": 1}, {\"le\": 1, \"count\": 1}, "
      "{\"le\": 7, \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.Snapshot().ToJson(), expected);
}

TEST(MetricsSnapshot, ToJsonEmptyRegistry) {
  MetricsRegistry registry;
  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"counters\": {},\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {}\n"
      "}\n";
  EXPECT_EQ(registry.Snapshot().ToJson(), expected);
}

TEST(MetricsSnapshot, ToTextSmoke) {
  MetricsRegistry registry;
  registry.GetCounter("some.counter")->Add(12);
  registry.GetHistogram("some.hist")->Record(10);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("some.counter"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("count 1, sum 10"), std::string::npos);
}

// Concurrency hammer: concurrent registration and updates across threads
// must produce exact totals and no data races (the TSan target of the obs
// suite).
TEST(MetricsRegistry, ConcurrentHammer) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 20000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread resolves its own handles, racing the registrations.
      Counter* counter = registry.GetCounter("hammer.counter");
      Gauge* gauge = registry.GetGauge("hammer.gauge");
      Histogram* histogram = registry.GetHistogram("hammer.hist");
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->Add(1);
        gauge->Subtract(1);
        histogram->Record(static_cast<uint64_t>(i % 1024));
        if (i % 1000 == 0) {
          // Snapshots race the writers by design; they must be safe.
          registry.Snapshot();
        }
        if (i % 4096 == 0) {
          registry.GetCounter("hammer.extra." + std::to_string(t));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("hammer.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetGauge("hammer.gauge")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("hammer.hist")->count(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace avqdb::obs
