// WriteAheadTable unit tests: commit visibility, batch atomicity,
// validation conflicts, snapshot merge correctness, recovery, WAL-failure
// poisoning, backpressure, and Flush checkpointing. auto_apply=false
// throughout so apply timing is deterministic; the concurrent suite lives
// in ingest_snapshot_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/db/exec_context.h"
#include "src/db/table.h"
#include "src/db/write_ahead_table.h"
#include "src/db/write_batch.h"
#include "src/storage/block_device.h"
#include "src/storage/fault_injection_device.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

constexpr size_t kBlockSize = 512;

std::set<OrdinalTuple> ToSet(const std::vector<OrdinalTuple>& tuples) {
  return {tuples.begin(), tuples.end()};
}

WriteAheadTableOptions ManualApply() {
  WriteAheadTableOptions options;
  options.auto_apply = false;
  return options;
}

class WriteAheadTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = testing::PaperShapeSchema();
    table_device_ = std::make_unique<MemBlockDevice>(kBlockSize);
    table_ = Table::CreateAvq(schema_, table_device_.get()).value();
    auto tuples = testing::RandomTuples(*schema_, 120, 0xbeefULL);
    std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
    baseline_.assign(unique.begin(), unique.end());
    ASSERT_TRUE(table_->BulkLoad(baseline_).ok());
    wal_device_ = std::make_unique<MemBlockDevice>(kBlockSize);
    uuid_ = GenerateWalUuid();
  }

  // A tuple guaranteed absent from the base table.
  OrdinalTuple FreshTuple(Random& rng) const {
    while (true) {
      OrdinalTuple t = testing::RandomTuple(*schema_, rng);
      if (!std::binary_search(baseline_.begin(), baseline_.end(), t,
                              [](const OrdinalTuple& a,
                                 const OrdinalTuple& b) {
                                return CompareTuples(a, b) < 0;
                              })) {
        return t;
      }
    }
  }

  SchemaPtr schema_;
  std::unique_ptr<MemBlockDevice> table_device_;
  std::unique_ptr<Table> table_;
  std::vector<OrdinalTuple> baseline_;  // φ-sorted
  std::unique_ptr<MemBlockDevice> wal_device_;
  WalUuid uuid_;
};

TEST_F(WriteAheadTableTest, CommittedBatchVisibleBeforeApply) {
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok()) << wat.status().ToString();
  Random rng(1);
  const OrdinalTuple added = FreshTuple(rng);
  const OrdinalTuple removed = baseline_.front();

  WriteBatch batch;
  batch.Insert(added);
  batch.Delete(removed);
  uint64_t commit_seq = 0;
  ASSERT_TRUE((*wat)->Write(std::move(batch), nullptr, &commit_seq).ok());
  EXPECT_EQ(commit_seq, 1u);
  EXPECT_EQ((*wat)->durable_seq(), 1u);
  EXPECT_EQ((*wat)->applied_seq(), 0u);  // nothing applied yet

  // The snapshot sees the committed batch even though the base table has
  // not been touched.
  uint64_t snapshot_seq = 0;
  auto scanned = (*wat)->SnapshotScan(nullptr, &snapshot_seq);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(snapshot_seq, 1u);
  std::set<OrdinalTuple> expected = ToSet(baseline_);
  expected.insert(added);
  expected.erase(removed);
  EXPECT_EQ(ToSet(*scanned), expected);
  // φ order is preserved through the merge.
  EXPECT_TRUE(std::is_sorted(scanned->begin(), scanned->end(),
                             [](const OrdinalTuple& a, const OrdinalTuple& b) {
                               return CompareTuples(a, b) < 0;
                             }));

  EXPECT_EQ(ToSet(table_->ScanAll().value()), ToSet(baseline_));
  ASSERT_TRUE((*wat)->Flush().ok());
  EXPECT_EQ((*wat)->applied_seq(), 1u);
  EXPECT_EQ(ToSet(table_->ScanAll().value()), expected);
}

TEST_F(WriteAheadTableTest, ValidationConflictsRejectWholeBatch) {
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok());
  Random rng(2);
  const OrdinalTuple fresh = FreshTuple(rng);

  WriteBatch duplicate;
  duplicate.Insert(fresh);
  duplicate.Insert(fresh);  // second insert conflicts with the first
  Status status = (*wat)->Write(std::move(duplicate));
  EXPECT_TRUE(status.IsAlreadyExists()) << status.ToString();

  WriteBatch missing;
  missing.Delete(fresh);  // never inserted (the rejected batch left no trace)
  status = (*wat)->Write(std::move(missing));
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();

  // Inserting an existing base tuple conflicts too.
  WriteBatch existing;
  existing.Insert(baseline_.front());
  status = (*wat)->Write(std::move(existing));
  EXPECT_TRUE(status.IsAlreadyExists()) << status.ToString();

  // A rejected batch consumes no commit sequence and leaves no versions.
  EXPECT_EQ((*wat)->durable_seq(), 0u);
  EXPECT_EQ(ToSet((*wat)->SnapshotScan().value()), ToSet(baseline_));

  // Delete-then-reinsert within one batch is valid: ops validate in order.
  WriteBatch cycle;
  cycle.Delete(baseline_.front());
  cycle.Insert(baseline_.front());
  EXPECT_TRUE((*wat)->Write(std::move(cycle)).ok());

  // Tuples that do not fit the schema are rejected up front.
  WriteBatch malformed;
  malformed.Insert(OrdinalTuple{999, 999});  // wrong arity
  status = (*wat)->Write(std::move(malformed));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST_F(WriteAheadTableTest, SnapshotSelectMergesOverlayAgainstModel) {
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok());
  Random rng(3);
  std::set<OrdinalTuple> model = ToSet(baseline_);
  for (int i = 0; i < 60; ++i) {
    OrdinalTuple t = testing::RandomTuple(*schema_, rng);
    WriteBatch batch;
    if (model.contains(t)) {
      batch.Delete(t);
      model.erase(t);
    } else {
      batch.Insert(t);
      model.insert(t);
    }
    ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
  }

  ConjunctiveQuery query;
  query.predicates.push_back(RangeQuery{2, 10, 50});
  query.predicates.push_back(RangeQuery{0, 1, 6});
  auto selected = (*wat)->SnapshotSelect(query);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();

  std::set<OrdinalTuple> expected;
  for (const OrdinalTuple& t : model) {
    if (t[2] >= 10 && t[2] <= 50 && t[0] >= 1 && t[0] <= 6) {
      expected.insert(t);
    }
  }
  EXPECT_EQ(ToSet(*selected), expected);

  // Contains agrees with the model for both present and absent tuples.
  for (int i = 0; i < 40; ++i) {
    OrdinalTuple t = testing::RandomTuple(*schema_, rng);
    auto contains = (*wat)->Contains(t);
    ASSERT_TRUE(contains.ok());
    EXPECT_EQ(*contains, model.contains(t));
  }
}

TEST_F(WriteAheadTableTest, RecoverReplaysUnappliedBatches) {
  Random rng(4);
  std::set<OrdinalTuple> model = ToSet(baseline_);
  {
    auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(),
                                       uuid_, ManualApply());
    ASSERT_TRUE(wat.ok());
    for (int i = 0; i < 25; ++i) {
      OrdinalTuple t = testing::RandomTuple(*schema_, rng);
      WriteBatch batch;
      if (model.contains(t)) {
        batch.Delete(t);
        model.erase(t);
      } else {
        batch.Insert(t);
        model.insert(t);
      }
      ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
    }
    // Destroyed with every batch durable in the WAL but none applied:
    // the base table still holds the baseline.
  }
  EXPECT_EQ(ToSet(table_->ScanAll().value()), ToSet(baseline_));

  WalReplayStats stats;
  auto recovered = WriteAheadTable::Recover(table_.get(), wal_device_.get(),
                                            uuid_, ManualApply(), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(stats.records, 25u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ((*recovered)->durable_seq(), 25u);
  EXPECT_EQ((*recovered)->applied_seq(), 25u);  // replay applies directly
  EXPECT_EQ(ToSet(table_->ScanAll().value()), model);
  EXPECT_EQ(ToSet((*recovered)->SnapshotScan().value()), model);

  // The recovered table accepts new writes with continuing sequences.
  uint64_t commit_seq = 0;
  WriteBatch batch;
  OrdinalTuple fresh = FreshTuple(rng);
  while (model.contains(fresh)) fresh = FreshTuple(rng);
  batch.Insert(fresh);
  ASSERT_TRUE((*recovered)->Write(std::move(batch), nullptr, &commit_seq).ok());
  EXPECT_EQ(commit_seq, 26u);
}

TEST_F(WriteAheadTableTest, RecoverToleratesAlreadyAppliedPrefix) {
  // Apply everything, then "crash" before Flush truncates the WAL: replay
  // re-applies batches the table already holds, which must be treated as
  // idempotent, not as corruption.
  Random rng(5);
  std::set<OrdinalTuple> model = ToSet(baseline_);
  {
    auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(),
                                       uuid_, ManualApply());
    ASSERT_TRUE(wat.ok());
    for (int i = 0; i < 10; ++i) {
      OrdinalTuple t = testing::RandomTuple(*schema_, rng);
      WriteBatch batch;
      if (model.contains(t)) {
        batch.Delete(t);
        model.erase(t);
      } else {
        batch.Insert(t);
        model.insert(t);
      }
      ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
    }
    // Destroyed without Flush: the WAL keeps all 10 batches.
  }
  // First recovery applies all 10 batches into the table...
  ASSERT_TRUE(WriteAheadTable::Recover(table_.get(), wal_device_.get(), uuid_,
                                       ManualApply())
                  .ok());
  EXPECT_EQ(ToSet(table_->ScanAll().value()), model);
  // ...and since Recover never truncates, a second recovery replays the
  // same records against the already-mutated table.
  WalReplayStats stats;
  auto again = WriteAheadTable::Recover(table_.get(), wal_device_.get(),
                                        uuid_, ManualApply(), &stats);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(ToSet(table_->ScanAll().value()), model);
}

TEST_F(WriteAheadTableTest, RecoverRejectsUuidMismatch) {
  {
    auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(),
                                       uuid_, ManualApply());
    ASSERT_TRUE(wat.ok());
  }
  WalUuid other = uuid_;
  other[3] ^= 0x10;
  auto recovered = WriteAheadTable::Recover(table_.get(), wal_device_.get(),
                                            other, ManualApply());
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsInvalidArgument())
      << recovered.status().ToString();
}

TEST_F(WriteAheadTableTest, WalSyncFailurePoisonsWritePath) {
  FaultInjectionBlockDevice fault(wal_device_.get());
  auto wat = WriteAheadTable::Create(table_.get(), &fault, uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok()) << wat.status().ToString();
  Random rng(6);
  const OrdinalTuple first = FreshTuple(rng);
  WriteBatch ok_batch;
  ok_batch.Insert(first);
  ASSERT_TRUE((*wat)->Write(std::move(ok_batch)).ok());

  // The next group commit's fsync dies mid-flight.
  fault.CrashDuringSync(1, 0);
  OrdinalTuple doomed = FreshTuple(rng);
  while (CompareTuples(doomed, first) == 0) doomed = FreshTuple(rng);
  WriteBatch failing;
  failing.Insert(doomed);
  Status status = (*wat)->Write(std::move(failing));
  ASSERT_FALSE(status.ok());

  // The failed write is invisible; the earlier committed one stays.
  std::set<OrdinalTuple> expected = ToSet(baseline_);
  expected.insert(first);
  EXPECT_EQ(ToSet((*wat)->SnapshotScan().value()), expected);
  EXPECT_EQ((*wat)->durable_seq(), 1u);

  // Every later write fails with the poisoned status, even after the
  // device recovers: the log can no longer be trusted to match acks.
  fault.Recover();
  fault.ClearFaults();
  WriteBatch later;
  later.Insert(doomed);
  Status poisoned = (*wat)->Write(std::move(later));
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.code(), status.code());

  // Reads keep working on the poisoned table.
  EXPECT_EQ(ToSet((*wat)->SnapshotScan().value()), expected);
}

TEST_F(WriteAheadTableTest, BackpressureHonorsDeadline) {
  WriteAheadTableOptions options = ManualApply();
  options.max_unapplied_batches = 4;
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     options);
  ASSERT_TRUE(wat.ok());
  Random rng(7);
  std::set<OrdinalTuple> used;
  auto next_fresh = [&] {
    OrdinalTuple t = FreshTuple(rng);
    while (!used.insert(t).second) t = FreshTuple(rng);
    return t;
  };
  for (int i = 0; i < 4; ++i) {
    WriteBatch batch;
    batch.Insert(next_fresh());
    ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
  }
  EXPECT_EQ((*wat)->unapplied_batches(), 4u);

  // The window is full and nothing applies in the background: the fifth
  // write must wait until its deadline expires.
  ExecContext ctx;
  ctx.SetDeadlineAfter(std::chrono::milliseconds(50));
  WriteBatch fifth;
  fifth.Insert(next_fresh());
  Status status = (*wat)->Write(std::move(fifth), &ctx);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();

  // Draining the window lets writes through again.
  ASSERT_TRUE((*wat)->Flush().ok());
  EXPECT_EQ((*wat)->unapplied_batches(), 0u);
  WriteBatch sixth;
  sixth.Insert(next_fresh());
  EXPECT_TRUE((*wat)->Write(std::move(sixth)).ok());
}

TEST_F(WriteAheadTableTest, FlushRunsCommitCallbackAndTruncatesWal) {
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok());
  int callbacks = 0;
  (*wat)->set_commit_callback([&callbacks] {
    ++callbacks;
    return Status::OK();
  });
  Random rng(8);
  WriteBatch batch;
  batch.Insert(FreshTuple(rng));
  ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
  const uint64_t generation = (*wat)->wal().generation();
  ASSERT_TRUE((*wat)->Flush().ok());
  EXPECT_EQ(callbacks, 1);
  EXPECT_GT((*wat)->wal().generation(), generation);
  EXPECT_EQ((*wat)->wal().last_seq(), 1u);
  EXPECT_EQ((*wat)->wal().start_seq(), 2u);

  // A flush with nothing new applied skips the truncate churn.
  ASSERT_TRUE((*wat)->Flush().ok());
  EXPECT_EQ(callbacks, 2);
}

TEST_F(WriteAheadTableTest, AutoApplyDrainsInBackground) {
  WriteAheadTableOptions options;  // auto_apply = true
  options.apply_chunk_batches = 2;
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     options);
  ASSERT_TRUE(wat.ok());
  Random rng(9);
  std::set<OrdinalTuple> model = ToSet(baseline_);
  for (int i = 0; i < 30; ++i) {
    OrdinalTuple t = testing::RandomTuple(*schema_, rng);
    WriteBatch batch;
    if (model.contains(t)) {
      batch.Delete(t);
      model.erase(t);
    } else {
      batch.Insert(t);
      model.insert(t);
    }
    ASSERT_TRUE((*wat)->Write(std::move(batch)).ok());
  }
  // Flush waits for the background applier rather than applying inline.
  ASSERT_TRUE((*wat)->Flush().ok());
  EXPECT_EQ((*wat)->applied_seq(), 30u);
  EXPECT_EQ((*wat)->unapplied_batches(), 0u);
  EXPECT_EQ(ToSet(table_->ScanAll().value()), model);
}

// --- exactly-once: the idempotency-token dedup window ------------------

MutationToken FilledToken(uint8_t fill) {
  MutationToken token;
  token.fill(fill);
  return token;
}

TEST_F(WriteAheadTableTest, DedupAnswersRetryWithOriginalSequence) {
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     ManualApply());
  ASSERT_TRUE(wat.ok());
  Random rng(10);
  const OrdinalTuple added = FreshTuple(rng);
  const MutationToken token = FilledToken(0x11);

  WriteBatch batch;
  batch.Insert(added);
  uint64_t first_seq = 0;
  ASSERT_TRUE((*wat)->Write(std::move(batch), nullptr, &first_seq, &token)
                  .ok());
  EXPECT_EQ(first_seq, 1u);

  // A retry of the same (acknowledged) batch must NOT re-validate —
  // re-inserting the tuple would be AlreadyExists — and must answer
  // with the original sequence.
  WriteBatch retry;
  retry.Insert(added);
  uint64_t retry_seq = 0;
  Status status = (*wat)->Write(std::move(retry), nullptr, &retry_seq, &token);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(retry_seq, first_seq);
  EXPECT_EQ((*wat)->durable_seq(), 1u);  // nothing was committed twice

  std::set<OrdinalTuple> expected = ToSet(baseline_);
  expected.insert(added);
  EXPECT_EQ(ToSet((*wat)->SnapshotScan().value()), expected);
}

TEST_F(WriteAheadTableTest, DedupWindowEvictsOldestDurableTokens) {
  WriteAheadTableOptions options = ManualApply();
  options.dedup_window = 2;
  auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(), uuid_,
                                     options);
  ASSERT_TRUE(wat.ok());
  Random rng(11);
  std::set<OrdinalTuple> used;
  std::vector<OrdinalTuple> added;
  for (uint8_t i = 1; i <= 4; ++i) {
    OrdinalTuple t = FreshTuple(rng);
    while (!used.insert(t).second) t = FreshTuple(rng);
    added.push_back(t);
    WriteBatch batch;
    batch.Insert(t);
    const MutationToken token = FilledToken(i);
    ASSERT_TRUE((*wat)->Write(std::move(batch), nullptr, nullptr, &token)
                    .ok());
  }

  // Token 4 is still inside the two-entry window: dedup answers.
  WriteBatch recent;
  recent.Insert(added[3]);
  const MutationToken recent_token = FilledToken(4);
  uint64_t seq = 0;
  ASSERT_TRUE(
      (*wat)->Write(std::move(recent), nullptr, &seq, &recent_token).ok());
  EXPECT_EQ(seq, 4u);

  // Token 1 was evicted: the retry re-validates like a fresh batch and
  // the duplicate insert surfaces as AlreadyExists.
  WriteBatch stale;
  stale.Insert(added[0]);
  const MutationToken stale_token = FilledToken(1);
  Status status = (*wat)->Write(std::move(stale), nullptr, nullptr,
                                &stale_token);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsAlreadyExists()) << status.ToString();
}

TEST_F(WriteAheadTableTest, RecoverRebuildsDedupWindowFromWalTail) {
  Random rng(12);
  const OrdinalTuple added = FreshTuple(rng);
  const MutationToken token = FilledToken(0x22);
  {
    auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(),
                                       uuid_, ManualApply());
    ASSERT_TRUE(wat.ok());
    WriteBatch batch;
    batch.Insert(added);
    uint64_t seq = 0;
    ASSERT_TRUE((*wat)->Write(std::move(batch), nullptr, &seq, &token).ok());
    ASSERT_EQ(seq, 1u);
    // Destroyed without Flush: the record (with its token) stays in the
    // WAL, exactly the crash-then-client-retries scenario.
  }
  auto recovered = WriteAheadTable::Recover(table_.get(), wal_device_.get(),
                                            uuid_, ManualApply());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // The retried batch arrives at the recovered server: the rebuilt
  // window must answer with the ORIGINAL sequence, not AlreadyExists.
  WriteBatch retry;
  retry.Insert(added);
  uint64_t retry_seq = 0;
  Status status =
      (*recovered)->Write(std::move(retry), nullptr, &retry_seq, &token);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(retry_seq, 1u);

  // A genuinely new batch touching the same tuple still validates.
  WriteBatch fresh;
  fresh.Insert(added);
  const MutationToken other = FilledToken(0x23);
  Status conflict =
      (*recovered)->Write(std::move(fresh), nullptr, nullptr, &other);
  EXPECT_TRUE(conflict.IsAlreadyExists()) << conflict.ToString();
}

TEST_F(WriteAheadTableTest, RolledBackTokenNeverAnswersWithSuccess) {
  FaultInjectionBlockDevice fault(wal_device_.get());
  {
    auto wat = WriteAheadTable::Create(table_.get(), &fault, uuid_,
                                       ManualApply());
    ASSERT_TRUE(wat.ok());
    Random rng(13);
    WriteBatch committed;
    committed.Insert(FreshTuple(rng));
    ASSERT_TRUE((*wat)->Write(std::move(committed)).ok());

    // This write's fsync dies: the batch is rolled back and must never
    // be acknowledged — not now, and not to a retry of its token.
    fault.CrashDuringSync(1, 0);
    OrdinalTuple doomed_tuple = FreshTuple(rng);
    const MutationToken token = FilledToken(0x33);
    WriteBatch doomed;
    doomed.Insert(doomed_tuple);
    ASSERT_FALSE(
        (*wat)->Write(std::move(doomed), nullptr, nullptr, &token).ok());

    fault.Recover();
    fault.ClearFaults();
    WriteBatch retry;
    retry.Insert(doomed_tuple);
    uint64_t seq = 0;
    Status status = (*wat)->Write(std::move(retry), nullptr, &seq, &token);
    ASSERT_FALSE(status.ok()) << "a rolled-back token answered a retry "
                                 "with success at seq "
                              << seq;
  }
}

TEST_F(WriteAheadTableTest, DedupWindowZeroDisablesButStillLogsTokens) {
  WriteAheadTableOptions options = ManualApply();
  options.dedup_window = 0;
  Random rng(14);
  const OrdinalTuple added = FreshTuple(rng);
  const MutationToken token = FilledToken(0x44);
  {
    auto wat = WriteAheadTable::Create(table_.get(), wal_device_.get(),
                                       uuid_, options);
    ASSERT_TRUE(wat.ok());
    WriteBatch batch;
    batch.Insert(added);
    ASSERT_TRUE((*wat)->Write(std::move(batch), nullptr, nullptr, &token)
                    .ok());

    // Dedup off: the retry re-validates and conflicts.
    WriteBatch retry;
    retry.Insert(added);
    Status status = (*wat)->Write(std::move(retry), nullptr, nullptr, &token);
    EXPECT_TRUE(status.IsAlreadyExists()) << status.ToString();
  }
  // The token was still recorded in the WAL payload: recovering with a
  // window enabled rebuilds it, and the retry dedups again.
  auto recovered = WriteAheadTable::Recover(table_.get(), wal_device_.get(),
                                            uuid_, ManualApply());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  WriteBatch retry;
  retry.Insert(added);
  uint64_t seq = 0;
  Status status =
      (*recovered)->Write(std::move(retry), nullptr, &seq, &token);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(seq, 1u);
}

}  // namespace
}  // namespace avqdb
