// Validates the Eq 5.7/5.8 implementation against the paper's own
// Fig 5.9 arithmetic.

#include "src/db/cost_model.h"

#include <gtest/gtest.h>

namespace avqdb {
namespace {

TEST(CostModel, BreakdownComponents) {
  // I = 10 blocks * 30 ms, N = 100 blocks, t1 = 30 ms, cpu = 14 ms.
  QueryCostBreakdown cost = EstimateResponseTime(10, 100, 30.0, 14.0);
  EXPECT_NEAR(cost.index_seconds, 0.3, 1e-12);
  EXPECT_NEAR(cost.data_io_seconds, 3.0, 1e-12);
  EXPECT_NEAR(cost.cpu_seconds, 1.4, 1e-12);
  EXPECT_NEAR(cost.total_seconds(), 4.7, 1e-12);
}

TEST(CostModel, ReproducesFig59Columns) {
  // The paper's inputs: index blocks = 5% of 189 / 64 data blocks,
  // N = 153.6 / 55.0, t1 = 30 ms.
  const double index_uncoded = 0.05 * 189;  // -> I = 0.283 s
  const double index_coded = 0.05 * 64;     // -> I = 0.096 s
  struct Expected {
    double c2, c1, improvement;
  };
  const auto machines = PaperMachines();
  // Fig 5.9 rows 9-11.
  const Expected expected[] = {
      {5.093, 2.506, 50.8},  // HP 9000/735
      {6.013, 3.966, 34.0},  // Sun 4/50
      {6.403, 5.116, 20.1},  // DEC 5000/120
  };
  ASSERT_EQ(machines.size(), 3u);
  for (size_t i = 0; i < machines.size(); ++i) {
    ResponseTimeRow row = ComputeResponseTimeRow(
        machines[i], index_uncoded, index_coded, 153.6, 55.0, 30.0);
    EXPECT_NEAR(row.index_uncoded_s, 0.283, 0.001) << machines[i].name;
    EXPECT_NEAR(row.index_coded_s, 0.096, 0.001);
    // The paper's printed C1/C2 carry rounding; 1% tolerance.
    EXPECT_NEAR(row.c2_s, expected[i].c2, expected[i].c2 * 0.01)
        << machines[i].name;
    EXPECT_NEAR(row.c1_s, expected[i].c1, expected[i].c1 * 0.01)
        << machines[i].name;
    EXPECT_NEAR(row.improvement_pct, expected[i].improvement, 1.0)
        << machines[i].name;
    EXPECT_FALSE(row.ToString().empty());
  }
}

TEST(CostModel, ImprovementGrowsWithCpuSpeed) {
  // §5.3.4: "the faster machines show higher ratios" — decode cost shrinks
  // relative to I/O, so AVQ's N advantage dominates.
  const auto machines = PaperMachines();
  double previous = 100.0;
  for (const auto& machine : machines) {  // ordered fastest to slowest
    ResponseTimeRow row =
        ComputeResponseTimeRow(machine, 9.45, 3.2, 153.6, 55.0, 30.0);
    EXPECT_LT(row.improvement_pct, previous) << machine.name;
    previous = row.improvement_pct;
  }
}

TEST(CostModel, HostMachineProfile) {
  MachineProfile host = HostMachine(0.5, 0.4, 0.05);
  EXPECT_EQ(host.name, "host");
  ResponseTimeRow row =
      ComputeResponseTimeRow(host, 9.45, 3.2, 153.6, 55.0, 30.0);
  // With near-zero CPU cost the improvement approaches the pure-I/O bound
  // 1 - (0.096 + 55*30.4/1000)/(0.283 + 153.6*30.05/1000) ~ 63%.
  EXPECT_GT(row.improvement_pct, 55.0);
  EXPECT_LT(row.improvement_pct, 70.0);
}

TEST(CostModel, DiskParametersBlockTime) {
  DiskParameters disk;
  EXPECT_NEAR(disk.BlockTimeMs(8192), 32.73, 0.01);
  disk.seek_ms = 0;
  disk.rotational_ms = 0;
  disk.controller_ms = 0;
  EXPECT_NEAR(disk.BlockTimeMs(3000), 1.0, 1e-9);
}

TEST(CostModel, ZeroC2GuardsDivision) {
  MachineProfile host = HostMachine(0, 0, 0);
  ResponseTimeRow row = ComputeResponseTimeRow(host, 0, 0, 0, 0, 30.0);
  EXPECT_EQ(row.improvement_pct, 0.0);
}

}  // namespace
}  // namespace avqdb
