// Streaming-cursor correctness: LowerBoundInBlock edge cases, and the
// property that a TupleBlockCursor walk over any block image — from any
// seek position — visits exactly the suffix that a full DecodeBlock plus
// LowerBoundInBlock would select, for both the AVQ and raw codecs, over
// seeded random schemas, options, and contents.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/avq/block_cursor.h"
#include "src/avq/block_decoder.h"
#include "src/avq/codec_options.h"
#include "src/avq/decode_kernel.h"
#include "src/common/random.h"
#include "src/db/block_codecs.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

using ::avqdb::testing::IntSchema;
using ::avqdb::testing::RandomTuple;

// ---- LowerBoundInBlock edge cases ----

TEST(LowerBoundInBlock, EmptyBlock) {
  std::vector<OrdinalTuple> tuples;
  EXPECT_EQ(LowerBoundInBlock(tuples, {0, 0}), 0u);
  EXPECT_EQ(LowerBoundInBlock(tuples, {5, 5}), 0u);
}

TEST(LowerBoundInBlock, AllTuplesSmallerThanKey) {
  std::vector<OrdinalTuple> tuples = {{0, 1}, {0, 5}, {1, 2}};
  EXPECT_EQ(LowerBoundInBlock(tuples, {7, 0}), tuples.size());
}

TEST(LowerBoundInBlock, AllTuplesLargerThanKey) {
  std::vector<OrdinalTuple> tuples = {{3, 1}, {3, 5}, {4, 2}};
  EXPECT_EQ(LowerBoundInBlock(tuples, {0, 0}), 0u);
  EXPECT_EQ(LowerBoundInBlock(tuples, {3, 0}), 0u);
}

TEST(LowerBoundInBlock, ExactAndBetweenKeys) {
  std::vector<OrdinalTuple> tuples = {{1, 0}, {1, 4}, {2, 2}, {5, 0}};
  EXPECT_EQ(LowerBoundInBlock(tuples, {1, 4}), 1u);  // exact hit
  EXPECT_EQ(LowerBoundInBlock(tuples, {1, 5}), 2u);  // between
  EXPECT_EQ(LowerBoundInBlock(tuples, {4, 9}), 3u);
}

TEST(LowerBoundInBlock, DuplicatePhiRunReturnsFirst) {
  std::vector<OrdinalTuple> tuples = {{1, 1}, {2, 2}, {2, 2},
                                      {2, 2}, {3, 0}};
  EXPECT_EQ(LowerBoundInBlock(tuples, {2, 2}), 1u);
  EXPECT_EQ(LowerBoundInBlock(tuples, {2, 3}), 4u);
}

// ---- cursor vs full-decode equivalence (property style) ----

const uint64_t kCardinalities[] = {1, 2, 7, 8, 255, 256, 257, 4096,
                                   65536, 1u << 20};

SchemaPtr RandomSchema(Random& rng) {
  const size_t num_attrs = 1 + rng.Uniform(6);
  std::vector<uint64_t> cards;
  for (size_t i = 0; i < num_attrs; ++i) {
    cards.push_back(kCardinalities[rng.Uniform(std::size(kCardinalities))]);
  }
  return IntSchema(cards);
}

CodecOptions RandomOptions(Random& rng) {
  CodecOptions options;
  options.variant = rng.Bernoulli(0.5) ? CodecVariant::kChainDelta
                                       : CodecVariant::kRepresentativeDelta;
  options.representative = rng.Bernoulli(0.5)
                               ? RepresentativeChoice::kMiddle
                               : RepresentativeChoice::kFirst;
  options.run_length_zeros = rng.Bernoulli(0.5);
  const size_t block_sizes[] = {512, 1024, 4096};
  options.block_size = block_sizes[rng.Uniform(3)];
  return options;
}

// φ-sorted random content that fits in one block of `codec` (duplicates
// allowed: zero deltas and equal-run seeks are the interesting cases).
std::vector<OrdinalTuple> RandomBlockContent(const Schema& schema,
                                             const TupleBlockCodec& codec,
                                             Random& rng) {
  std::vector<OrdinalTuple> tuples;
  for (size_t i = 0; i < 400; ++i) {
    if (!tuples.empty() && rng.Bernoulli(0.2)) {
      tuples.push_back(tuples[rng.Uniform(tuples.size())]);
    } else {
      tuples.push_back(RandomTuple(schema, rng));
    }
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  tuples.resize(codec.FillCount(tuples, 0));
  return tuples;
}

struct CodecCase {
  std::unique_ptr<TupleBlockCodec> codec;
  SchemaPtr schema;
  std::string image;
  std::vector<OrdinalTuple> decoded;
};

CodecCase MakeCase(bool avq, uint64_t seed) {
  Random rng(seed);
  CodecCase c;
  c.schema = RandomSchema(rng);
  if (avq) {
    c.codec = MakeAvqBlockCodec(c.schema, RandomOptions(rng));
  } else {
    c.codec = MakeRawBlockCodec(c.schema, 1024);
  }
  auto tuples = RandomBlockContent(*c.schema, *c.codec, rng);
  EXPECT_FALSE(tuples.empty());
  c.image = c.codec->EncodeBlock(tuples).value();
  c.decoded = c.codec->DecodeBlock(Slice(c.image)).value();
  EXPECT_EQ(c.decoded, tuples);
  return c;
}

class BlockCursorProperty : public ::testing::TestWithParam<bool> {};

// Runs `body` once per compiled-in, runtime-available decode kernel,
// forcing each as the process dispatch; restores auto dispatch after.
// Pins cursor == DecodeBlock under every kernel, not just the default.
template <typename Fn>
void ForEachAvailableKernel(Fn body) {
  for (const DecodeKernel* kernel : AllDecodeKernels()) {
    if (!kernel->Available()) continue;
    SetDecodeKernelForTesting(kernel);
    body(kernel->name());
  }
  SetDecodeKernelForTesting(nullptr);
}

TEST_P(BlockCursorProperty, FullWalkMatchesDecodeBlock) {
  ForEachAvailableKernel([&](const char* kernel_name) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      CodecCase c = MakeCase(GetParam(), seed);
      auto cursor = c.codec->NewCursor(c.image).value();
      ASSERT_TRUE(cursor->SeekToFirst().ok());
      std::vector<OrdinalTuple> walked;
      while (cursor->Valid()) {
        EXPECT_EQ(cursor->position(), walked.size());
        walked.push_back(cursor->tuple());
        ASSERT_TRUE(cursor->Next().ok());
      }
      EXPECT_EQ(walked, c.decoded) << "seed " << seed << " kernel "
                                   << kernel_name;
      EXPECT_EQ(cursor->tuple_count(), c.decoded.size());
    }
  });
}

TEST_P(BlockCursorProperty, SeekMatchesLowerBoundEverywhere) {
  ForEachAvailableKernel([&](const char* kernel_name) {
    for (uint64_t seed = 100; seed <= 115; ++seed) {
      CodecCase c = MakeCase(GetParam(), seed);
      Random rng(seed * 31 + 7);
      for (int trial = 0; trial < 12; ++trial) {
        // Mix of present tuples (exact seeks, including into duplicate
        // runs) and fresh uniform keys (between / beyond seeks).
        OrdinalTuple key = rng.Bernoulli(0.5) && !c.decoded.empty()
                               ? c.decoded[rng.Uniform(c.decoded.size())]
                               : RandomTuple(*c.schema, rng);
        const size_t expected = LowerBoundInBlock(c.decoded, key);
        auto cursor = c.codec->NewCursor(c.image).value();
        ASSERT_TRUE(cursor->Seek(key).ok());
        if (expected == c.decoded.size()) {
          EXPECT_FALSE(cursor->Valid())
              << "seed " << seed << " kernel " << kernel_name;
          continue;
        }
        ASSERT_TRUE(cursor->Valid());
        EXPECT_EQ(cursor->position(), expected)
            << "seed " << seed << " kernel " << kernel_name;
        // The remaining walk must reproduce the decoded suffix exactly.
        for (size_t i = expected; i < c.decoded.size(); ++i) {
          ASSERT_TRUE(cursor->Valid());
          EXPECT_EQ(cursor->tuple(), c.decoded[i]);
          ASSERT_TRUE(cursor->Next().ok());
        }
        EXPECT_FALSE(cursor->Valid());
      }
    }
  });
}

TEST_P(BlockCursorProperty, SecondPositioningCallIsRejected) {
  CodecCase c = MakeCase(GetParam(), 7);
  auto cursor = c.codec->NewCursor(c.image).value();
  ASSERT_TRUE(cursor->SeekToFirst().ok());
  EXPECT_TRUE(cursor->SeekToFirst().IsInvalidArgument());
  EXPECT_TRUE(cursor->Seek(c.decoded.front()).IsInvalidArgument());
}

TEST_P(BlockCursorProperty, CorruptedImagesNeverCrash) {
  for (uint64_t seed = 200; seed <= 209; ++seed) {
    CodecCase c = MakeCase(GetParam(), seed);
    Random rng(seed);
    // Truncations: either Open fails or the walk surfaces an error;
    // either way no crash and no out-of-bounds read (ASan-checked).
    for (size_t cut : {size_t{0}, size_t{8}, c.image.size() / 2}) {
      std::string truncated = c.image.substr(0, cut);
      auto cursor = c.codec->NewCursor(truncated);
      if (!cursor.ok()) continue;
      Status s = cursor.value()->SeekToFirst();
      while (s.ok() && cursor.value()->Valid()) {
        s = cursor.value()->Next();
      }
    }
    // Random single-byte flips: the walk either errors out or yields
    // tuples — it must not crash. (CRC catches most flips at Open.)
    for (int trial = 0; trial < 20; ++trial) {
      std::string mutated = c.image;
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
      auto cursor = c.codec->NewCursor(mutated);
      if (!cursor.ok()) continue;
      Status s = cursor.value()->SeekToFirst();
      while (s.ok() && cursor.value()->Valid()) {
        s = cursor.value()->Next();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, BlockCursorProperty, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "avq" : "raw";
                         });

// The AVQ-specific early-exit guarantee: a seek above the representative
// never decodes the backward half, and abandoning the walk early leaves
// the tail undecoded.
TEST(BlockCursor, PartialDecodeSkipsPrefixAndTail) {
  SchemaPtr schema = IntSchema({256, 256});
  CodecOptions options;
  options.block_size = 4096;
  options.representative = RepresentativeChoice::kMiddle;
  auto codec = MakeAvqBlockCodec(schema, options);
  std::vector<OrdinalTuple> tuples;
  for (uint64_t a = 0; a < 64; ++a) {
    tuples.push_back({a, (a * 7) % 256});
  }
  tuples.resize(codec->FillCount(tuples, 0));
  ASSERT_GE(tuples.size(), 16u);
  std::string image = codec->EncodeBlock(tuples).value();

  auto cursor = BlockCursor::Open(schema, image).value();
  const size_t rep = cursor->header().rep_index;
  ASSERT_GT(rep, 0u);
  ASSERT_LT(rep + 1, tuples.size());
  // Seek strictly above the representative: the backward half is skipped
  // at byte level, so the only reconstructions are the representative
  // parse and one forward step.
  OrdinalTuple key = tuples[rep + 1];
  ASSERT_TRUE(cursor->Seek(key).ok());
  ASSERT_TRUE(cursor->Valid());
  EXPECT_EQ(cursor->position(), rep + 1);
  // Abandoning here leaves both the prefix and the tail undecoded.
  EXPECT_EQ(cursor->tuples_decoded(), 2u);
  EXPECT_LT(cursor->tuples_decoded(), tuples.size());
}

}  // namespace
}  // namespace avqdb
