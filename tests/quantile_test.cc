// Quantile estimator edge cases: empty histograms, the all-zero bucket,
// single samples, the top overflow bucket, and rank monotonicity.

#include "src/obs/quantile.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"

namespace avqdb::obs {
namespace {

MetricsSnapshot::HistogramSample MakeSample(
    std::vector<std::pair<uint64_t, uint64_t>> buckets) {
  MetricsSnapshot::HistogramSample h;
  h.name = "test.hist";
  h.sum = 0;
  h.count = 0;
  for (const auto& [le, count] : buckets) h.count += count;
  h.buckets = std::move(buckets);
  return h;
}

TEST(Quantile, EmptyHistogramIsZero) {
  MetricsSnapshot::HistogramSample h = MakeSample({});
  EXPECT_EQ(EstimateQuantile(h, 0.5), 0.0);
  const Quantiles q = EstimateQuantiles(h);
  EXPECT_EQ(q.p50, 0.0);
  EXPECT_EQ(q.p95, 0.0);
  EXPECT_EQ(q.p99, 0.0);
}

TEST(Quantile, AllSamplesInZeroBucket) {
  // Bucket with le == 0 holds exactly the value 0.
  MetricsSnapshot::HistogramSample h = MakeSample({{0, 100}});
  EXPECT_EQ(EstimateQuantile(h, 0.0), 0.0);
  EXPECT_EQ(EstimateQuantile(h, 0.5), 0.0);
  EXPECT_EQ(EstimateQuantile(h, 1.0), 0.0);
}

TEST(Quantile, SingleSampleStaysWithinItsBucket) {
  // One sample in bucket [5, 7] (le = 7): every quantile must land
  // inside the bucket's range.
  MetricsSnapshot::HistogramSample h = MakeSample({{7, 1}});
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double v = EstimateQuantile(h, q);
    EXPECT_GE(v, 4.0) << "q=" << q;
    EXPECT_LE(v, 7.0) << "q=" << q;
  }
}

TEST(Quantile, TopOverflowBucketDoesNotOverflow) {
  // The last histogram bucket has le = 2^64 - 1 and lower bound 2^63.
  // The le/2 + 1 reconstruction must not wrap.
  constexpr uint64_t kMaxLe = std::numeric_limits<uint64_t>::max();
  MetricsSnapshot::HistogramSample h = MakeSample({{kMaxLe, 10}});
  const double lo = std::ldexp(1.0, 63);  // 2^63
  const double hi = std::ldexp(1.0, 64);  // ~2^64
  for (double q : {0.01, 0.5, 0.99}) {
    const double v = EstimateQuantile(h, q);
    EXPECT_GE(v, lo) << "q=" << q;
    EXPECT_LE(v, hi) << "q=" << q;
  }
}

TEST(Quantile, QuantileIsClampedToUnitInterval) {
  MetricsSnapshot::HistogramSample h = MakeSample({{1, 4}, {3, 4}});
  EXPECT_EQ(EstimateQuantile(h, -2.0), EstimateQuantile(h, 0.0));
  EXPECT_EQ(EstimateQuantile(h, 3.0), EstimateQuantile(h, 1.0));
}

TEST(Quantile, RanksLandInTheRightBuckets) {
  // 50 samples at 0, 40 in [1,1], 10 in [9,16] (le = 1 and 15).
  MetricsSnapshot::HistogramSample h =
      MakeSample({{0, 50}, {1, 40}, {15, 10}});
  EXPECT_EQ(EstimateQuantile(h, 0.25), 0.0);   // rank 25 -> zero bucket
  EXPECT_EQ(EstimateQuantile(h, 0.75), 1.0);   // rank 75 -> [1, 1]
  const double p99 = EstimateQuantile(h, 0.99);  // rank 99 -> [8, 15]
  EXPECT_GE(p99, 8.0);
  EXPECT_LE(p99, 15.0);
}

TEST(Quantile, TrioIsMonotonic) {
  MetricsSnapshot::HistogramSample h =
      MakeSample({{1, 100}, {3, 50}, {7, 25}, {255, 5}, {1023, 1}});
  const Quantiles q = EstimateQuantiles(h);
  EXPECT_LE(q.p50, q.p95);
  EXPECT_LE(q.p95, q.p99);
}

TEST(Quantile, MatchesLiveHistogramBucketing) {
  // Record through a real registry histogram and check the estimate
  // against the known sample values.
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("latency_us");
  for (int i = 0; i < 90; ++i) hist->Record(10);   // bucket [8, 15]
  for (int i = 0; i < 10; ++i) hist->Record(1000);  // bucket [512, 1023]
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& sample = snapshot.histograms[0];
  const double p50 = EstimateQuantile(sample, 0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 15.0);
  const double p99 = EstimateQuantile(sample, 0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
}

}  // namespace
}  // namespace avqdb::obs
