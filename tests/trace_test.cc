// Query-trace spans: activation scoping, parent/child structure, attrs,
// the span cap, the EXPLAIN ANALYZE-style printer, and end-to-end trace
// collection through ExecuteRangeSelect on every access path.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/db/query.h"
#include "src/db/table.h"
#include "src/storage/block_device.h"
#include "src/workload/generator.h"

namespace avqdb {
namespace {

TEST(Trace, InactiveSpansAreNoOps) {
  EXPECT_FALSE(obs::TracingActive());
  obs::TraceSpanScope span("ignored");
  EXPECT_FALSE(span.recording());
  span.AddAttr("key", 1);  // must not crash
  EXPECT_FALSE(obs::TracingActive());
}

TEST(Trace, RecordsNestedSpansWithAttrs) {
  obs::QueryTrace trace;
  {
    obs::TraceActivation activation(&trace);
    EXPECT_TRUE(obs::TracingActive());
    obs::TraceSpanScope root("root");
    EXPECT_TRUE(root.recording());
    {
      obs::TraceSpanScope child("child");
      child.AddAttr("block", 12);
      obs::TraceSpanScope grandchild("grandchild");
    }
    obs::TraceSpanScope sibling("sibling");
  }
  EXPECT_FALSE(obs::TracingActive());

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans()[0].name, "root");
  EXPECT_EQ(trace.spans()[0].parent, obs::QueryTrace::kNoParent);
  EXPECT_EQ(trace.spans()[1].name, "child");
  EXPECT_EQ(trace.spans()[1].parent, 0u);
  EXPECT_EQ(trace.spans()[2].name, "grandchild");
  EXPECT_EQ(trace.spans()[2].parent, 1u);
  // The sibling attaches to root again: the child's scope restored the
  // parent on destruction.
  EXPECT_EQ(trace.spans()[3].name, "sibling");
  EXPECT_EQ(trace.spans()[3].parent, 0u);

  ASSERT_EQ(trace.spans()[1].attrs.size(), 1u);
  EXPECT_EQ(trace.spans()[1].attrs[0].first, "block");
  EXPECT_EQ(trace.spans()[1].attrs[0].second, 12u);
  EXPECT_EQ(trace.dropped_spans(), 0u);
}

TEST(Trace, ReusableAfterActivationEnds) {
  obs::QueryTrace first;
  {
    obs::TraceActivation activation(&first);
    obs::TraceSpanScope span("a");
  }
  obs::QueryTrace second;
  {
    obs::TraceActivation activation(&second);
    obs::TraceSpanScope span("b");
  }
  ASSERT_EQ(first.spans().size(), 1u);
  ASSERT_EQ(second.spans().size(), 1u);
  EXPECT_EQ(second.spans()[0].name, "b");
}

TEST(Trace, CapsSpansAndCountsDropped) {
  obs::QueryTrace trace;
  {
    obs::TraceActivation activation(&trace);
    obs::TraceSpanScope root("root");
    for (size_t i = 0; i < obs::QueryTrace::kMaxSpans + 4; ++i) {
      obs::TraceSpanScope span("leaf");
      if (i >= obs::QueryTrace::kMaxSpans - 1) {
        EXPECT_FALSE(span.recording());
      }
    }
  }
  EXPECT_EQ(trace.spans().size(), obs::QueryTrace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 5u);
  EXPECT_NE(trace.ToString().find("spans dropped"), std::string::npos);
}

TEST(Trace, ToStringRendersTree) {
  obs::QueryTrace trace;
  {
    obs::TraceActivation activation(&trace);
    obs::TraceSpanScope root("select");
    obs::TraceSpanScope child("scan:full-scan");
    child.AddAttr("blocks", 3);
  }
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("select"), std::string::npos);
  EXPECT_NE(text.find("  scan:full-scan"), std::string::npos);  // indented
  EXPECT_NE(text.find("blocks=3"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

// --- end-to-end: collect_trace through the query path ---

struct TraceFixture {
  TraceFixture() : device(512) {
    auto rel = GenerateRelation([] {
      RelationSpec spec;
      spec.explicit_domain_sizes = {8, 16, 32};
      spec.num_attributes = 3;
      spec.num_tuples = 600;
      spec.dedupe = true;
      spec.seed = 99;
      return spec;
    }());
    schema = rel.value().schema;
    CodecOptions options;
    options.block_size = 512;
    table = Table::CreateAvq(schema, &device, options).value();
    AVQDB_CHECK_OK(table->BulkLoad(rel.value().tuples));
  }

  MemBlockDevice device;
  SchemaPtr schema;
  std::unique_ptr<Table> table;
};

std::vector<std::string> SpanNames(const obs::QueryTrace& trace) {
  std::vector<std::string> names;
  names.reserve(trace.spans().size());
  for (const auto& span : trace.spans()) names.push_back(span.name);
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& want) {
  for (const auto& name : names) {
    if (name == want) return true;
  }
  return false;
}

TEST(QueryTraceIntegration, TraceCollectedOnEveryAccessPath) {
  TraceFixture f;
  ASSERT_TRUE(f.table->CreateSecondaryIndex(2).ok());

  struct Case {
    RangeQuery query;
    const char* scan_span;
  };
  const Case cases[] = {
      {{0, 2, 5}, "scan:clustered-range"},
      {{2, 7, 9}, "scan:secondary-index"},
      {{1, 3, 12}, "scan:full-scan"},
  };
  for (const Case& c : cases) {
    QueryStats stats;
    stats.collect_trace = true;
    auto result = ExecuteRangeSelect(*f.table, c.query, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(stats.trace, nullptr) << c.scan_span;
    const std::vector<std::string> names = SpanNames(*stats.trace);
    EXPECT_EQ(names[0], "select") << c.scan_span;
    EXPECT_TRUE(Contains(names, "plan")) << c.scan_span;
    EXPECT_TRUE(Contains(names, c.scan_span));
    // Data was touched one way or the other.
    EXPECT_TRUE(Contains(names, "block:decode") ||
                Contains(names, "block:cache_hit"))
        << c.scan_span;
    EXPECT_FALSE(stats.trace->ToString().empty());
  }
}

TEST(QueryTraceIntegration, TraceOffLeavesStatsNull) {
  TraceFixture f;
  QueryStats stats;
  auto result = ExecuteRangeSelect(*f.table, RangeQuery{0, 1, 4}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.trace, nullptr);
  EXPECT_FALSE(stats.collect_trace);
}

TEST(QueryTraceIntegration, ResultsIdenticalWithAndWithoutTrace) {
  TraceFixture f;
  QueryStats plain;
  auto expected = ExecuteRangeSelect(*f.table, RangeQuery{0, 0, 6}, &plain);
  ASSERT_TRUE(expected.ok());
  QueryStats traced;
  traced.collect_trace = true;
  auto actual = ExecuteRangeSelect(*f.table, RangeQuery{0, 0, 6}, &traced);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected.value(), actual.value());
  EXPECT_EQ(plain.tuples_matched, traced.tuples_matched);
  EXPECT_EQ(plain.path, traced.path);
}

}  // namespace
}  // namespace avqdb
