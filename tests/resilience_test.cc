// End-to-end resilience coverage of the governed query path: expired
// deadlines stop before work starts, mid-flight cancellation stops at the
// next block boundary, memory budgets bound materialization and degrade
// the hash join, Database::Select composes admission + budgets, and a
// multi-threaded cancellation hammer proves the whole stack ends in
// exactly {OK with correct results, Cancelled, DeadlineExceeded}.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/db/database.h"
#include "src/db/exec_context.h"
#include "src/db/join.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/storage/block_device.h"
#include "src/storage/decoded_block_cache.h"
#include "tests/test_util.h"

namespace avqdb {
namespace {

using std::chrono::milliseconds;

// Delegating device that fires a cancellation token after a configured
// number of reads — the deterministic way to cancel "mid-flight".
class CancelAfterReadsDevice final : public BlockDevice {
 public:
  explicit CancelAfterReadsDevice(BlockDevice* base) : base_(base) {}

  void Arm(std::shared_ptr<CancellationToken> token, uint64_t after_reads) {
    token_ = std::move(token);
    remaining_.store(after_reads);
  }

  uint64_t reads() const { return reads_.load(); }

  size_t block_size() const override { return base_->block_size(); }
  Result<BlockId> Allocate() override { return base_->Allocate(); }
  Status Free(BlockId id) override { return base_->Free(id); }
  Status Write(BlockId id, Slice data) override {
    return base_->Write(id, data);
  }
  size_t allocated_blocks() const override {
    return base_->allocated_blocks();
  }

  Status Read(BlockId id, std::string* out) const override {
    reads_.fetch_add(1);
    if (token_ != nullptr && remaining_.fetch_sub(1) == 1) {
      token_->Cancel();
    }
    return base_->Read(id, out);
  }

 private:
  BlockDevice* base_;
  std::shared_ptr<CancellationToken> token_;
  mutable std::atomic<uint64_t> remaining_{UINT64_MAX};
  mutable std::atomic<uint64_t> reads_{0};
};

std::vector<OrdinalTuple> UniqueTuples(const Schema& schema, size_t count,
                                       uint64_t seed) {
  auto tuples = testing::RandomTuples(schema, count * 2, seed);
  std::set<OrdinalTuple> unique(tuples.begin(), tuples.end());
  std::vector<OrdinalTuple> out(unique.begin(), unique.end());
  if (out.size() > count) out.resize(count);
  return out;
}

class ResilienceTest : public ::testing::Test {
 protected:
  static constexpr size_t kBlockSize = 512;

  void LoadTable(size_t count, uint64_t seed) {
    schema_ = testing::PaperShapeSchema();
    device_ = std::make_unique<MemBlockDevice>(kBlockSize);
    cancel_device_ = std::make_unique<CancelAfterReadsDevice>(device_.get());
    table_ = Table::CreateAvq(schema_, cancel_device_.get()).value();
    tuples_ = UniqueTuples(*schema_, count, seed);
    ASSERT_TRUE(table_->BulkLoad(tuples_).ok());
    ASSERT_GE(table_->DataBlockCount(), 4u) << "tests need multiple blocks";
  }

  ConjunctiveQuery SelectAll() const { return ConjunctiveQuery{}; }

  SchemaPtr schema_;
  std::unique_ptr<MemBlockDevice> device_;
  std::unique_ptr<CancelAfterReadsDevice> cancel_device_;
  std::unique_ptr<Table> table_;
  std::vector<OrdinalTuple> tuples_;
};

TEST_F(ResilienceTest, ExpiredDeadlineStopsBeforeDecodingBlocks) {
  LoadTable(900, 0xdead1);
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  QueryStats stats;
  auto result = ExecuteConjunctiveSelect(*table_, SelectAll(), &stats, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // The governance check runs before the first block is fetched: an
  // already-dead query decodes at most one block.
  EXPECT_LE(stats.data_blocks_read, 1u);
  EXPECT_LE(stats.tuples_decoded, tuples_.size() / 2);
}

TEST_F(ResilienceTest, ExpiredDeadlineStopsJoinsToo) {
  LoadTable(600, 0xdead2);
  ExecContext ctx;
  ctx.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  JoinStats stats;
  auto result = ExecuteEquiJoin(*table_, 1, *table_, 1, JoinStrategy::kHash,
                                &stats, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LE(stats.left_blocks_read + stats.right_blocks_read, 1u);
}

TEST_F(ResilienceTest, MidFlightCancelStopsAtTheNextBlockBoundary) {
  LoadTable(900, 0xca9ce1);
  ExecContext ctx;
  // Fire the token during the third device read of the scan.
  cancel_device_->Arm(ctx.cancellation_token(), 3);
  const uint64_t reads_before = cancel_device_->reads();
  QueryStats stats;
  auto result = ExecuteConjunctiveSelect(*table_, SelectAll(), &stats, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // The block being decoded when the token fired finishes; nothing new
  // starts after the next boundary check. A little slack covers index
  // reads (they share the device), but a full scan would be dozens.
  EXPECT_LE(cancel_device_->reads() - reads_before, 8u);
  EXPECT_LT(stats.data_blocks_read, table_->DataBlockCount());
}

TEST_F(ResilienceTest, CancelBeforeStartReturnsCancelledWithNoReads) {
  LoadTable(500, 0xca9ce2);
  ExecContext ctx;
  ctx.Cancel();
  const uint64_t reads_before = cancel_device_->reads();
  auto result = ExecuteConjunctiveSelect(*table_, SelectAll(), nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(cancel_device_->reads(), reads_before);
}

TEST_F(ResilienceTest, GovernedQueryMatchesUngovernedWhenUnconstrained) {
  LoadTable(700, 0xfa1f);
  ExecContext ctx;
  ctx.SetDeadlineAfter(std::chrono::hours(1));
  MemoryBudget budget(64 << 20);
  ctx.set_memory_budget(&budget);
  auto governed = ExecuteConjunctiveSelect(*table_, SelectAll(), nullptr, &ctx);
  auto ungoverned =
      ExecuteConjunctiveSelect(*table_, SelectAll(), nullptr, nullptr);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_EQ(*governed, *ungoverned);
  EXPECT_EQ(budget.used(), 0u);  // everything released at completion
  EXPECT_GT(budget.peak(), 0u);
}

TEST_F(ResilienceTest, TinyBudgetFailsMaterializationWithResourceExhausted) {
  LoadTable(2500, 0xb4d6e7);
  ExecContext ctx;
  MemoryBudget budget(32 * 1024);  // smaller than one lease slab
  ctx.set_memory_budget(&budget);
  auto result = ExecuteConjunctiveSelect(*table_, SelectAll(), nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_GE(budget.denials(), 1u);
  EXPECT_EQ(budget.used(), 0u);  // the failed query left nothing charged
}

TEST_F(ResilienceTest, BudgetDeniedCacheFillSkipsAdmissionNotTheQuery) {
  LoadTable(900, 0xcac4e);
  DecodedBlockCache cache(/*byte_budget=*/8 << 20);
  table_->SetDecodedBlockCache(&cache);

  // A narrow range select materializes little, so one slab covers the
  // output — but that slab consumes the whole budget, so every optional
  // cache fill is denied.
  RangeQuery query{.attribute = 0, .lo = 0, .hi = 0};
  ExecContext ctx;
  MemoryBudget budget(64 * 1024);
  ctx.set_memory_budget(&budget);
  auto governed = ExecuteRangeSelect(*table_, query, nullptr, &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(cache.stats().insertions, 0u);

  // The same query ungoverned fills the cache as usual.
  auto ungoverned = ExecuteRangeSelect(*table_, query, nullptr, nullptr);
  ASSERT_TRUE(ungoverned.ok());
  EXPECT_EQ(*governed, *ungoverned);
  EXPECT_GT(cache.stats().insertions, 0u);
  table_->SetDecodedBlockCache(nullptr);
}

TEST(JoinDegradationTest, HashBuildDenialDegradesToBlockNestedLoop) {
  constexpr size_t kBlockSize = 512;
  auto schema = testing::IntSchema({4, 1u << 16});
  MemBlockDevice left_device(kBlockSize), right_device(kBlockSize);
  auto left = Table::CreateAvq(schema, &left_device).value();
  auto right = Table::CreateAvq(schema, &right_device).value();

  // Left (the build side: it is the smaller relation) is big enough that
  // charging its hash table must exceed two 64 KiB lease slabs; the
  // matching keys are few, so the join *output* fits one slab.
  std::vector<OrdinalTuple> left_tuples, right_tuples;
  for (uint64_t i = 0; i < 2400; ++i) {
    left_tuples.push_back({i % 4, i});
  }
  for (uint64_t i = 0; i < 2396; ++i) {
    right_tuples.push_back({i % 4, 40000 + i});
  }
  for (uint64_t j = 0; j < 5; ++j) {
    right_tuples.push_back({j % 4, 100 + j});  // the only matches
  }
  ASSERT_TRUE(left->BulkLoad(left_tuples).ok());
  ASSERT_TRUE(right->BulkLoad(right_tuples).ok());

  JoinStats ungoverned_stats;
  auto expected = ExecuteEquiJoin(*left, 1, *right, 1, JoinStrategy::kHash,
                                  &ungoverned_stats, nullptr);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 5u);
  ASSERT_FALSE(ungoverned_stats.degraded);

  ExecContext ctx;
  MemoryBudget budget(128 * 1024);  // two slabs: build denial, output fits
  ctx.set_memory_budget(&budget);
  JoinStats stats;
  auto governed = ExecuteEquiJoin(*left, 1, *right, 1, JoinStrategy::kHash,
                                  &stats, &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.strategy, JoinStrategy::kBlockNestedLoop);
  EXPECT_EQ(*governed, *expected);  // degradation never changes results
  EXPECT_GE(budget.denials(), 1u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(DatabaseGovernanceTest, SelectComposesAdmissionAndBudgets) {
  Database db(512);
  auto* table =
      db.CreateTable("t", testing::PaperShapeSchema(), TableKind::kAvq)
          .value();
  auto tuples = UniqueTuples(*table->schema(), 500, 0x6075e1);
  ASSERT_TRUE(table->BulkLoad(tuples).ok());
  db.EnableAdmissionControl({.max_concurrency = 2, .max_queue_depth = 8});
  db.SetQueryMemoryLimit(8 << 20);

  auto governed = db.Select("t", ConjunctiveQuery{});
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(governed->size(), tuples.size());
  EXPECT_EQ(db.admission_controller()->in_flight(), 0u);

  // A database-wide limit below one slab starves every query.
  db.SetMemoryLimit(1024);
  auto starved = db.Select("t", ConjunctiveQuery{});
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsResourceExhausted());
  db.SetMemoryLimit(MemoryBudget::kUnlimited);

  // Deadlines pass through Select end to end.
  ExecContext dead;
  dead.set_deadline(ExecContext::Clock::now() - milliseconds(1));
  auto expired = db.Select("t", ConjunctiveQuery{}, &dead);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded());
}

TEST(SalvageGovernanceTest, RepairLoadHonorsCancellation) {
  constexpr size_t kBlockSize = 512;
  auto schema = testing::PaperShapeSchema();
  MemBlockDevice image(kBlockSize);
  {
    MemBlockDevice staging(kBlockSize);
    auto table = Table::CreateAvq(schema, &staging).value();
    auto tuples = UniqueTuples(*schema, 600, 0x5a1a6e);
    ASSERT_TRUE(table->BulkLoad(tuples).ok());
    ASSERT_TRUE(SaveTableToDevice(*table, &image).ok());
  }

  ExecContext ctx;
  ctx.Cancel();
  RepairReport report;
  LoadOptions options;
  options.repair = true;
  options.report = &report;
  options.ctx = &ctx;
  auto loaded = OpenTableOnDevice(&image, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCancelled()) << loaded.status().ToString();

  // Ungoverned repair of the same image succeeds.
  LoadOptions clean;
  clean.repair = true;
  auto ok = OpenTableOnDevice(&image, clean);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->table->num_tuples(), 600u);
}

// The hammer: worker threads run governed scans on private tables while a
// canceller thread fires their tokens at random points and some
// iterations carry millisecond deadlines. Every outcome must be OK (with
// exactly the full result), Cancelled, or DeadlineExceeded — never a
// corrupt result, crash, or leaked budget byte.
TEST(ResilienceHammerTest, ConcurrentCancellationNeverCorruptsResults) {
  constexpr size_t kThreads = 4;
  constexpr size_t kIterations = 24;
  constexpr size_t kBlockSize = 512;

  std::mutex token_mu;
  std::vector<std::shared_ptr<CancellationToken>> live_tokens;
  std::atomic<bool> done{false};
  std::atomic<size_t> ok_count{0}, cancelled_count{0}, deadline_count{0};

  std::thread canceller([&] {
    while (!done.load()) {
      {
        std::lock_guard<std::mutex> lock(token_mu);
        for (auto& token : live_tokens) token->Cancel();
        live_tokens.clear();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Private table per worker: the storage layer's I/O accounting is
      // not synchronized, so sharing a table would be a data race in the
      // test, not in the feature under test.
      auto schema = testing::PaperShapeSchema();
      MemBlockDevice device(kBlockSize);
      auto table = Table::CreateAvq(schema, &device).value();
      auto tuples = UniqueTuples(*schema, 500, 0x4a3c0 + t);
      ASSERT_TRUE(table->BulkLoad(tuples).ok());
      auto expected = ExecuteConjunctiveSelect(*table, ConjunctiveQuery{},
                                               nullptr, nullptr);
      ASSERT_TRUE(expected.ok());

      MemoryBudget budget(64 << 20);
      for (size_t i = 0; i < kIterations; ++i) {
        ExecContext ctx;
        ctx.set_memory_budget(&budget);
        if (i % 3 == 1) {
          ctx.SetDeadlineAfter(std::chrono::microseconds(200 * (i % 5)));
        }
        if (i % 3 != 2) {
          std::lock_guard<std::mutex> lock(token_mu);
          live_tokens.push_back(ctx.cancellation_token());
        }
        auto result =
            ExecuteConjunctiveSelect(*table, ConjunctiveQuery{}, nullptr, &ctx);
        if (result.ok()) {
          EXPECT_EQ(*result, *expected) << "worker " << t << " iter " << i;
          ok_count.fetch_add(1);
        } else if (result.status().IsCancelled()) {
          cancelled_count.fetch_add(1);
        } else if (result.status().IsDeadlineExceeded()) {
          deadline_count.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected status: "
                        << result.status().ToString();
        }
        EXPECT_EQ(budget.used(), 0u) << "budget leak at iter " << i;
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true);
  canceller.join();

  EXPECT_EQ(ok_count + cancelled_count + deadline_count,
            kThreads * kIterations);
  EXPECT_GT(ok_count.load(), 0u);  // the hammer must not kill everything
}

}  // namespace
}  // namespace avqdb
