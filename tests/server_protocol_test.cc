// Wire-protocol conformance: golden frame bytes, payload round-trips,
// the stable wire-code table, and malformed-frame behavior against a
// live server (the answer to any garbage is a well-formed ERROR frame
// or a closed connection — never a crash or a hang).

#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/coding.h"
#include "src/server/protocol.h"
#include "src/server/wire_status.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using testing::RangeOn;
using testing::RawConn;
using testing::ServerFixture;

std::string Bytes(std::initializer_list<uint8_t> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// --- golden frames: the byte layout is the contract -------------------

TEST(ProtocolGolden, HelloFrameBytes) {
  const std::string frame =
      EncodeFrame(Opcode::kHello, 0, Slice(EncodeHelloPayload()));
  // 4B LE payload length (8) | opcode 1 | 8B LE request id 0 |
  // 4B LE magic "AVQP" | 4B LE version 1.
  EXPECT_EQ(frame, Bytes({0x08, 0x00, 0x00, 0x00,                    //
                          0x01,                                      //
                          0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
                          0x00,                                      //
                          'A', 'V', 'Q', 'P',                        //
                          0x01, 0x00, 0x00, 0x00}));
}

TEST(ProtocolGolden, FrameHeaderRoundTrip) {
  const std::string frame =
      EncodeFrame(Opcode::kQuery, 0x1122334455667788ull,
                  Slice(std::string("abc")));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  const FrameHeader header =
      DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()));
  EXPECT_EQ(header.payload_length, 3u);
  EXPECT_EQ(header.opcode, static_cast<uint8_t>(Opcode::kQuery));
  EXPECT_EQ(header.request_id, 0x1122334455667788ull);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "abc");
}

TEST(ProtocolGolden, ErrorFrameBytes) {
  const std::string payload =
      EncodeErrorPayload(Status::NotFound("no such table"));
  // 4B LE wire code (kNotFound = 2) | varint length | message.
  ASSERT_GE(payload.size(), 5u);
  EXPECT_EQ(payload.substr(0, 4), Bytes({0x02, 0x00, 0x00, 0x00}));
  EXPECT_EQ(payload.substr(4),
            Bytes({13}) + std::string("no such table"));
}

// --- payload round-trips ---------------------------------------------

TEST(ProtocolPayloads, HelloRejectsBadMagicAndTruncation) {
  uint32_t version = 0;
  EXPECT_TRUE(ParseHelloPayload(Slice(EncodeHelloPayload(7)), &version).ok());
  EXPECT_EQ(version, 7u);

  std::string bad = EncodeHelloPayload();
  bad[0] ^= 0xFF;
  EXPECT_EQ(ParseHelloPayload(Slice(bad), &version).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseHelloPayload(Slice(std::string("AVQ")), &version).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, WelcomeRoundTrip) {
  uint32_t version = 0;
  std::string banner;
  ASSERT_TRUE(ParseWelcomePayload(
                  Slice(EncodeWelcomePayload(3, "avqdb test")), &version,
                  &banner)
                  .ok());
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(banner, "avqdb test");
}

TEST(ProtocolPayloads, QueryRoundTrip) {
  QueryRequest request;
  request.table = "orders";
  request.deadline_ms = 1500;
  request.max_memory_bytes = 64ull << 20;
  request.query.predicates.push_back({0, 2, 5});
  request.query.predicates.push_back({3, 0, 1u << 30});

  QueryRequest decoded;
  ASSERT_TRUE(
      ParseQueryPayload(Slice(EncodeQueryPayload(request)), &decoded).ok());
  EXPECT_EQ(decoded.table, "orders");
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.max_memory_bytes, 64ull << 20);
  ASSERT_EQ(decoded.query.predicates.size(), 2u);
  EXPECT_EQ(decoded.query.predicates[1].attribute, 3u);
  EXPECT_EQ(decoded.query.predicates[1].hi, 1u << 30);
}

TEST(ProtocolPayloads, QueryRejectsTrailingBytes) {
  QueryRequest request;
  request.table = "t";
  std::string payload = EncodeQueryPayload(request) + "x";
  QueryRequest decoded;
  EXPECT_EQ(ParseQueryPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, ResultChunkRoundTrip) {
  std::vector<OrdinalTuple> tuples = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::string payload = EncodeResultChunkPayload(tuples, 1, 3);
  std::vector<OrdinalTuple> decoded;
  ASSERT_TRUE(ParseResultChunkPayload(Slice(payload), &decoded).ok());
  EXPECT_EQ(decoded,
            std::vector<OrdinalTuple>({{4, 5, 6}, {7, 8, 9}}));
}

TEST(ProtocolPayloads, ResultChunkRejectsOverclaimedCount) {
  // A count larger than the payload could possibly hold must be caught
  // structurally, before any allocation sized from it.
  std::string payload;
  PutVarint32(&payload, 3);     // arity
  PutVarint32(&payload, 1000);  // claimed tuples
  PutVarint64(&payload, 1);
  std::vector<OrdinalTuple> decoded;
  EXPECT_EQ(ParseResultChunkPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, ErrorRoundTripAndOkRejected) {
  Status carried = Status::OK();
  ASSERT_TRUE(ParseErrorPayload(
                  Slice(EncodeErrorPayload(
                      Status::ResourceExhausted("queue full"))),
                  &carried)
                  .ok());
  EXPECT_EQ(carried.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(carried.ToString().find("queue full"), std::string::npos);

  // Wire code 0 (OK) inside an ERROR frame is malformed.
  std::string ok_payload;
  PutFixed32(&ok_payload, 0);
  PutVarint32(&ok_payload, 0);
  EXPECT_EQ(ParseErrorPayload(Slice(ok_payload), &carried).code(),
            StatusCode::kInvalidArgument);
}

// --- QUERY flags (r2 optional trailer) -------------------------------

TEST(ProtocolPayloads, QueryFlagsRoundTrip) {
  QueryRequest request;
  request.table = "orders";
  request.flags = kQueryFlagCollectTrace;
  request.query.predicates.push_back({1, 2, 3});

  QueryRequest decoded;
  ASSERT_TRUE(
      ParseQueryPayload(Slice(EncodeQueryPayload(request)), &decoded).ok());
  EXPECT_EQ(decoded.flags, kQueryFlagCollectTrace);
  EXPECT_EQ(decoded.table, "orders");
}

TEST(ProtocolPayloads, FlaglessQueryEncodingIsByteIdenticalToR1) {
  // The flags field is an optional trailer: a flagless request must not
  // grow the frame, so r1 parsers keep accepting it.
  QueryRequest flagless;
  flagless.table = "orders";
  flagless.query.predicates.push_back({0, 1, 2});
  QueryRequest flagged = flagless;
  flagged.flags = kQueryFlagCollectTrace;
  EXPECT_EQ(EncodeQueryPayload(flagged).size(),
            EncodeQueryPayload(flagless).size() + 4);

  QueryRequest decoded;
  ASSERT_TRUE(ParseQueryPayload(Slice(EncodeQueryPayload(flagless)),
                                &decoded)
                  .ok());
  EXPECT_EQ(decoded.flags, 0u);
}

TEST(ProtocolPayloads, QueryRejectsExplicitZeroFlagsTrailer) {
  // Zero flags must be expressed by omitting the trailer, so there is
  // exactly one wire image per request.
  QueryRequest request;
  request.table = "t";
  std::string payload = EncodeQueryPayload(request);
  PutFixed32(&payload, 0);
  QueryRequest decoded;
  EXPECT_EQ(ParseQueryPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, QueryRejectsUnknownFlagBits) {
  QueryRequest request;
  request.table = "t";
  std::string payload = EncodeQueryPayload(request);
  PutFixed32(&payload, kQueryFlagsMask << 1);
  QueryRequest decoded;
  EXPECT_EQ(ParseQueryPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

// --- RESULT_END trace trailer ----------------------------------------

obs::QueryTrace MakeTrace() {
  std::vector<obs::QueryTrace::Span> spans(3);
  spans[0].name = "select";
  spans[0].parent = obs::QueryTrace::kNoParent;
  spans[0].start_ns = 100;
  spans[0].duration_ns = 5000;
  spans[0].attrs = {{"predicates", 2}};
  spans[1].name = "plan";
  spans[1].parent = 0;
  spans[1].start_ns = 150;
  spans[1].duration_ns = 400;
  spans[2].name = "scan";
  spans[2].parent = 0;
  spans[2].start_ns = 600;
  spans[2].duration_ns = 4400;
  spans[2].attrs = {{"blocks", 7}, {"tuples", 123}};
  return obs::QueryTrace::FromParts(std::move(spans), 2);
}

TEST(ProtocolPayloads, ResultEndTraceTrailerRoundTrip) {
  const obs::QueryTrace trace = MakeTrace();
  const std::string payload = EncodeResultEndPayload(123, trace);

  uint64_t total = 0;
  bool has_trace = false;
  obs::QueryTrace decoded;
  ASSERT_TRUE(
      ParseResultEndPayload(Slice(payload), &total, &has_trace, &decoded)
          .ok());
  EXPECT_EQ(total, 123u);
  ASSERT_TRUE(has_trace);
  EXPECT_EQ(decoded.dropped_spans(), 2u);
  ASSERT_EQ(decoded.spans().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.spans()[i].name, trace.spans()[i].name);
    EXPECT_EQ(decoded.spans()[i].parent, trace.spans()[i].parent);
    EXPECT_EQ(decoded.spans()[i].start_ns, trace.spans()[i].start_ns);
    EXPECT_EQ(decoded.spans()[i].duration_ns, trace.spans()[i].duration_ns);
    EXPECT_EQ(decoded.spans()[i].attrs, trace.spans()[i].attrs);
  }
}

TEST(ProtocolPayloads, ResultEndWithoutTrailerParsesEitherWay) {
  const std::string payload = EncodeResultEndPayload(55);
  uint64_t total = 0;
  ASSERT_TRUE(ParseResultEndPayload(Slice(payload), &total).ok());
  EXPECT_EQ(total, 55u);
  bool has_trace = true;
  obs::QueryTrace decoded;
  ASSERT_TRUE(
      ParseResultEndPayload(Slice(payload), &total, &has_trace, &decoded)
          .ok());
  EXPECT_FALSE(has_trace);
}

TEST(ProtocolPayloads, StrictResultEndParseRejectsTraceTrailer) {
  // The r1 parser stays strict: a trailer it does not understand is a
  // malformed payload, not silently ignored bytes.
  const std::string payload = EncodeResultEndPayload(9, MakeTrace());
  uint64_t total = 0;
  EXPECT_EQ(ParseResultEndPayload(Slice(payload), &total).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, TraceRejectsForwardParentReference) {
  // Span 0 claiming a parent other than "none" would point at a span
  // the decoder has not seen yet.
  std::string encoded;
  PutVarint32(&encoded, 1);  // span count
  PutVarint32(&encoded, 4);  // name length
  encoded += "span";
  PutVarint64(&encoded, 2);  // parent_plus_one = 2 -> parent index 1 > 0
  PutVarint64(&encoded, 0);  // start_ns
  PutVarint64(&encoded, 0);  // duration_ns
  PutVarint32(&encoded, 0);  // attr count
  PutVarint64(&encoded, 0);  // dropped
  Slice src(encoded);
  obs::QueryTrace decoded;
  EXPECT_EQ(ParseQueryTrace(&src, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, TraceRejectsOverclaimedSpanCount) {
  std::string encoded;
  PutVarint32(&encoded, 100000);  // far above the wire bound
  Slice src(encoded);
  obs::QueryTrace decoded;
  EXPECT_EQ(ParseQueryTrace(&src, &decoded).code(),
            StatusCode::kInvalidArgument);
}

// --- STATS / STATS_RESULT --------------------------------------------

TEST(ProtocolPayloads, StatsPayloadRoundTripAndRejections) {
  uint32_t sections = 0;
  ASSERT_TRUE(ParseStatsPayload(
                  Slice(EncodeStatsPayload(kStatsSectionsMask)), &sections)
                  .ok());
  EXPECT_EQ(sections, kStatsSectionsMask);

  // Asking for nothing, unknown bits, truncation, and trailing bytes
  // are each malformed.
  EXPECT_EQ(ParseStatsPayload(Slice(EncodeStatsPayload(0)), &sections).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatsPayload(Slice(EncodeStatsPayload(1u << 31)), &sections)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatsPayload(Slice(std::string("\x01", 1)), &sections)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseStatsPayload(
                Slice(EncodeStatsPayload(kStatsSectionMetrics) + "x"),
                &sections)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, StatsResultRoundTrip) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"server.requests", 42});
  snapshot.gauges.push_back({"pool.bytes", -123456});
  obs::MetricsSnapshot::HistogramSample hist;
  hist.name = "server.request.exec_us";
  hist.count = 5;
  hist.sum = 900;
  hist.buckets = {{0, 1}, {255, 4}};
  snapshot.histograms.push_back(hist);

  std::vector<obs::QueryJournal::Record> journal(2);
  journal[0].request_id = 7;
  journal[0].session_id = 1;
  journal[0].start_unix_us = 1754700000000000ull;
  journal[0].tuples = 99;
  journal[0].queue_us = 10;
  journal[0].exec_us = 2000;
  journal[0].send_us = 30;
  journal[0].wire_status = 0;
  journal[0].reason = static_cast<uint8_t>(obs::QueryJournal::Reason::kNone);
  std::snprintf(journal[0].table, sizeof(journal[0].table), "orders");
  journal[1] = journal[0];
  journal[1].request_id = 8;
  journal[1].wire_status = 11;  // DeadlineExceeded on the wire
  journal[1].reason =
      static_cast<uint8_t>(obs::QueryJournal::Reason::kDeadline);
  journal[1].flags = obs::QueryJournal::kFlagSlow;

  const std::string payload =
      EncodeStatsResultPayload(kStatsSectionsMask, &snapshot, &journal);
  uint32_t sections = 0;
  obs::MetricsSnapshot decoded;
  std::vector<obs::QueryJournal::Record> decoded_journal;
  ASSERT_TRUE(ParseStatsResultPayload(Slice(payload), &sections, &decoded,
                                      &decoded_journal)
                  .ok());
  EXPECT_EQ(sections, kStatsSectionsMask);
  ASSERT_EQ(decoded.counters.size(), 1u);
  EXPECT_EQ(decoded.counters[0].name, "server.requests");
  EXPECT_EQ(decoded.counters[0].value, 42u);
  ASSERT_EQ(decoded.gauges.size(), 1u);
  EXPECT_EQ(decoded.gauges[0].value, -123456);
  ASSERT_EQ(decoded.histograms.size(), 1u);
  EXPECT_EQ(decoded.histograms[0].name, "server.request.exec_us");
  EXPECT_EQ(decoded.histograms[0].count, 5u);
  EXPECT_EQ(decoded.histograms[0].sum, 900u);
  EXPECT_EQ(decoded.histograms[0].buckets, hist.buckets);
  ASSERT_EQ(decoded_journal.size(), 2u);
  EXPECT_EQ(decoded_journal[0].request_id, 7u);
  EXPECT_EQ(decoded_journal[0].tuples, 99u);
  EXPECT_EQ(decoded_journal[0].table_name(), "orders");
  EXPECT_EQ(decoded_journal[1].wire_status, 11u);
  EXPECT_EQ(decoded_journal[1].flags, obs::QueryJournal::kFlagSlow);
  EXPECT_EQ(decoded_journal[1].reason,
            static_cast<uint8_t>(obs::QueryJournal::Reason::kDeadline));
}

TEST(ProtocolPayloads, StatsResultMetricsOnlyOmitsJournal) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"c", 1});
  const std::string payload =
      EncodeStatsResultPayload(kStatsSectionMetrics, &snapshot, nullptr);
  uint32_t sections = 0;
  obs::MetricsSnapshot decoded;
  std::vector<obs::QueryJournal::Record> decoded_journal;
  ASSERT_TRUE(ParseStatsResultPayload(Slice(payload), &sections, &decoded,
                                      &decoded_journal)
                  .ok());
  EXPECT_EQ(sections, kStatsSectionMetrics);
  EXPECT_TRUE(decoded_journal.empty());
}

TEST(ProtocolPayloads, StatsResultRejectsUnknownSectionsAndOverclaims) {
  uint32_t sections = 0;
  obs::MetricsSnapshot decoded;
  std::vector<obs::QueryJournal::Record> decoded_journal;

  std::string unknown;
  PutFixed32(&unknown, 1u << 30);
  EXPECT_EQ(ParseStatsResultPayload(Slice(unknown), &sections, &decoded,
                                    &decoded_journal)
                .code(),
            StatusCode::kInvalidArgument);

  // Metrics section claiming a billion counters in a tiny payload.
  std::string overclaimed;
  PutFixed32(&overclaimed, kStatsSectionMetrics);
  PutVarint32(&overclaimed, 1000000000);
  EXPECT_EQ(ParseStatsResultPayload(Slice(overclaimed), &sections, &decoded,
                                    &decoded_journal)
                .code(),
            StatusCode::kInvalidArgument);

  // Trailing bytes after a well-formed result.
  obs::MetricsSnapshot snapshot;
  const std::string trailing =
      EncodeStatsResultPayload(kStatsSectionMetrics, &snapshot, nullptr) +
      "x";
  EXPECT_EQ(ParseStatsResultPayload(Slice(trailing), &sections, &decoded,
                                    &decoded_journal)
                .code(),
            StatusCode::kInvalidArgument);
}

// --- MUTATE idempotency tokens & keepalive opcodes --------------------

TEST(ProtocolPayloads, MutateTokenTrailerRoundTrip) {
  MutateRequest request;
  request.table = "orders";
  request.deadline_ms = 250;
  request.batch.Insert(OrdinalTuple{1, 2, 3});
  request.has_token = true;
  for (size_t i = 0; i < kMutationTokenBytes; ++i) {
    request.token[i] = static_cast<uint8_t>(0xA0 + i);
  }
  const std::string payload = EncodeMutatePayload(request);
  MutateRequest decoded;
  ASSERT_TRUE(ParseMutatePayload(Slice(payload), &decoded).ok());
  EXPECT_EQ(decoded.table, "orders");
  EXPECT_EQ(decoded.deadline_ms, 250u);
  ASSERT_TRUE(decoded.has_token);
  EXPECT_EQ(decoded.token, request.token);
}

TEST(ProtocolPayloads, TokenlessMutateEncodingIsByteIdenticalToR1) {
  // The token is a pure trailer: a tokenless MUTATE must encode to
  // exactly the pre-token bytes, and a tokened one to those bytes plus
  // the 16-byte token — nothing else may shift.
  MutateRequest request;
  request.table = "t";
  request.batch.Delete(OrdinalTuple{7});
  const std::string without = EncodeMutatePayload(request);
  request.has_token = true;
  request.token.fill(0x5C);
  const std::string with = EncodeMutatePayload(request);
  ASSERT_EQ(with.size(), without.size() + kMutationTokenBytes);
  EXPECT_EQ(with.substr(0, without.size()), without);

  MutateRequest decoded;
  ASSERT_TRUE(ParseMutatePayload(Slice(without), &decoded).ok());
  EXPECT_FALSE(decoded.has_token);
}

TEST(ProtocolPayloads, MutateRejectsBadTokenTrailerLength) {
  MutateRequest request;
  request.table = "t";
  request.batch.Insert(OrdinalTuple{1});
  const std::string payload = EncodeMutatePayload(request);
  // Any trailer that is neither empty nor exactly one token is garbage.
  for (size_t extra : {size_t{1}, size_t{8}, kMutationTokenBytes - 1,
                       kMutationTokenBytes + 1}) {
    MutateRequest decoded;
    const std::string bad = payload + std::string(extra, '\x00');
    EXPECT_EQ(ParseMutatePayload(Slice(bad), &decoded).code(),
              StatusCode::kInvalidArgument)
        << "trailer of " << extra << " bytes";
  }
}

TEST(ProtocolGolden, KeepaliveOpcodesArePinned) {
  // PING/PONG are an additive revision: 13/14, protocol version still 1.
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPing), 13);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPong), 14);
  EXPECT_EQ(kProtocolVersion, 1u);
  EXPECT_TRUE(IsKnownOpcode(13));
  EXPECT_TRUE(IsKnownOpcode(14));
  EXPECT_FALSE(IsKnownOpcode(15));
}

TEST(ProtocolLive, PingPongRoundTrip) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  ServerFixture fixture(options);
  auto conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();
  conn.SendFrame(Opcode::kPing, 77, "");
  auto pong = conn.ReadOneFrame();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->opcode, Opcode::kPong);
  EXPECT_EQ(pong->request_id, 77u);
  EXPECT_TRUE(pong->payload.empty());
}

TEST(ProtocolLive, PingWithPayloadIsProtocolFatal) {
  testing::FixtureOptions options;
  options.num_tuples = 200;
  ServerFixture fixture(options);
  auto conn = RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();
  conn.SendFrame(Opcode::kPing, 78, "x");
  Status error = conn.ReadErrorFor(78);
  EXPECT_FALSE(error.ok());
  EXPECT_TRUE(conn.ServerClosed());
}

// --- the stable wire-code table --------------------------------------

// Every pair is pinned to a literal number: reordering StatusCode (or
// renumbering the enum) must not change the wire. Extending StatusCode
// requires a new line here, in wire_status.cc, and in docs/PROTOCOL.md.
TEST(WireStatus, PinnedCodes) {
  const struct {
    StatusCode code;
    uint32_t wire;
  } kPins[] = {
      {StatusCode::kOk, 0},
      {StatusCode::kInvalidArgument, 1},
      {StatusCode::kNotFound, 2},
      {StatusCode::kAlreadyExists, 3},
      {StatusCode::kOutOfRange, 4},
      {StatusCode::kCorruption, 5},
      {StatusCode::kIOError, 6},
      {StatusCode::kResourceExhausted, 7},
      {StatusCode::kUnimplemented, 8},
      {StatusCode::kInternal, 9},
      {StatusCode::kUnavailable, 10},
      {StatusCode::kDeadlineExceeded, 11},
      {StatusCode::kCancelled, 12},
  };
  for (const auto& pin : kPins) {
    EXPECT_EQ(WireCodeForStatus(pin.code), pin.wire)
        << "StatusCode " << static_cast<int>(pin.code);
    bool known = false;
    EXPECT_EQ(StatusCodeForWire(pin.wire, &known), pin.code)
        << "wire code " << pin.wire;
    EXPECT_TRUE(known);
  }
}

TEST(WireStatus, UnknownWireCodeDegradesToInternal) {
  bool known = true;
  EXPECT_EQ(StatusCodeForWire(9999, &known), StatusCode::kInternal);
  EXPECT_FALSE(known);
  const Status status = MakeWireStatus(9999, "future error kind");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("future error kind"),
            std::string::npos);
}

// --- malformed frames against a live server --------------------------

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  ServerFixture fixture_{[] {
    testing::FixtureOptions options;
    options.num_tuples = 2000;
    return options;
  }()};

  // The liveness probe: after abuse, a fresh well-behaved client must
  // still get correct answers.
  void ExpectServerStillServes() {
    auto client = fixture_.Connect();
    ASSERT_NE(client, nullptr);
    QueryRequest request;
    request.table = "orders";
    request.query = RangeOn(0, 0, 2);
    auto tuples = client->Query(request);
    ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
    EXPECT_EQ(*tuples, fixture_.DirectSelect(RangeOn(0, 0, 2)));
  }
};

TEST_F(ProtocolFuzzTest, BadMagicHelloGetsErrorThenClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  std::string payload = EncodeHelloPayload();
  payload[2] ^= 0x40;
  conn.SendFrame(Opcode::kHello, 0, payload);
  EXPECT_EQ(conn.ReadErrorFor(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, UnsupportedVersionGetsErrorThenClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.SendFrame(Opcode::kHello, 0, EncodeHelloPayload(99));
  EXPECT_EQ(conn.ReadErrorFor(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, QueryBeforeHelloIsAProtocolError) {
  RawConn conn = RawConn::Connect(fixture_.port());
  QueryRequest request;
  request.table = "orders";
  conn.SendFrame(Opcode::kQuery, 1, EncodeQueryPayload(request));
  EXPECT_EQ(conn.ReadErrorFor(1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, GarbageOpcodeGetsErrorOrClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.Handshake();
  conn.SendFrame(static_cast<Opcode>(0xEE), 5, "junk");
  Result<Frame> frame = conn.ReadOneFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->opcode, Opcode::kError);
    EXPECT_TRUE(conn.ServerClosed());
  } else {
    EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, OversizedLengthFieldIsRejectedBeforeAllocation) {
  testing::FixtureOptions options;
  options.num_tuples = 100;
  options.server.max_frame_bytes = 4096;
  ServerFixture small(options);

  RawConn conn = RawConn::Connect(small.port());
  // A header whose length field (1 GiB) exceeds the server's cap. No
  // payload follows; the server must reject on the header alone.
  std::string header;
  PutFixed32(&header, 1u << 30);
  header.push_back(static_cast<char>(Opcode::kHello));
  PutFixed64(&header, 0);
  conn.SendBytes(header);
  Result<Frame> frame = conn.ReadOneFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->opcode, Opcode::kError);
  }
  EXPECT_TRUE(conn.ServerClosed());
}

TEST_F(ProtocolFuzzTest, TruncatedHeaderThenCloseDoesNotWedgeServer) {
  for (size_t len = 1; len < kFrameHeaderBytes; ++len) {
    RawConn conn = RawConn::Connect(fixture_.port());
    conn.SendBytes(std::string(len, '\x07'));
    conn.Close();
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, TruncatedPayloadThenCloseDoesNotWedgeServer) {
  RawConn conn = RawConn::Connect(fixture_.port());
  // Header promises 100 payload bytes; only 3 arrive before EOF.
  std::string header;
  PutFixed32(&header, 100);
  header.push_back(static_cast<char>(Opcode::kHello));
  PutFixed64(&header, 0);
  conn.SendBytes(header + "abc");
  conn.Close();
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, MalformedQueryPayloadGetsTypedError) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.Handshake();
  conn.SendFrame(Opcode::kQuery, 9, "\x01garbage-not-a-query");
  EXPECT_EQ(conn.ReadErrorFor(9).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, RandomGarbageNeverCrashesOrHangs) {
  const uint64_t before =
      testing::CounterValue(obs::kServerProtocolErrors);
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 32; ++round) {
    RawConn conn = RawConn::Connect(fixture_.port());
    ASSERT_TRUE(conn.valid());
    // Half the rounds handshake first so garbage also lands on an
    // established session.
    if (round % 2 == 1) conn.Handshake();
    std::string junk(1 + rng() % 96, '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    if (round % 4 == 0) {
      // Make the length field plausible so the server waits for a
      // payload that never fully arrives, then hits EOF.
      uint32_t claimed = static_cast<uint32_t>(rng() % 256);
      junk.replace(0, 4, std::string(4, '\0'));
      EncodeFixed32(reinterpret_cast<uint8_t*>(&junk[0]), claimed);
    }
    conn.SendBytes(junk);
    conn.Close();
  }
  // The server survives and the abuse is visible in telemetry.
  ExpectServerStillServes();
  EXPECT_GT(testing::CounterValue(obs::kServerProtocolErrors), before);
}

}  // namespace
}  // namespace avqdb::server
