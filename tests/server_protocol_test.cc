// Wire-protocol conformance: golden frame bytes, payload round-trips,
// the stable wire-code table, and malformed-frame behavior against a
// live server (the answer to any garbage is a well-formed ERROR frame
// or a closed connection — never a crash or a hang).

#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/coding.h"
#include "src/server/protocol.h"
#include "src/server/wire_status.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using testing::RangeOn;
using testing::RawConn;
using testing::ServerFixture;

std::string Bytes(std::initializer_list<uint8_t> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// --- golden frames: the byte layout is the contract -------------------

TEST(ProtocolGolden, HelloFrameBytes) {
  const std::string frame =
      EncodeFrame(Opcode::kHello, 0, Slice(EncodeHelloPayload()));
  // 4B LE payload length (8) | opcode 1 | 8B LE request id 0 |
  // 4B LE magic "AVQP" | 4B LE version 1.
  EXPECT_EQ(frame, Bytes({0x08, 0x00, 0x00, 0x00,                    //
                          0x01,                                      //
                          0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
                          0x00,                                      //
                          'A', 'V', 'Q', 'P',                        //
                          0x01, 0x00, 0x00, 0x00}));
}

TEST(ProtocolGolden, FrameHeaderRoundTrip) {
  const std::string frame =
      EncodeFrame(Opcode::kQuery, 0x1122334455667788ull,
                  Slice(std::string("abc")));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  const FrameHeader header =
      DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()));
  EXPECT_EQ(header.payload_length, 3u);
  EXPECT_EQ(header.opcode, static_cast<uint8_t>(Opcode::kQuery));
  EXPECT_EQ(header.request_id, 0x1122334455667788ull);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "abc");
}

TEST(ProtocolGolden, ErrorFrameBytes) {
  const std::string payload =
      EncodeErrorPayload(Status::NotFound("no such table"));
  // 4B LE wire code (kNotFound = 2) | varint length | message.
  ASSERT_GE(payload.size(), 5u);
  EXPECT_EQ(payload.substr(0, 4), Bytes({0x02, 0x00, 0x00, 0x00}));
  EXPECT_EQ(payload.substr(4),
            Bytes({13}) + std::string("no such table"));
}

// --- payload round-trips ---------------------------------------------

TEST(ProtocolPayloads, HelloRejectsBadMagicAndTruncation) {
  uint32_t version = 0;
  EXPECT_TRUE(ParseHelloPayload(Slice(EncodeHelloPayload(7)), &version).ok());
  EXPECT_EQ(version, 7u);

  std::string bad = EncodeHelloPayload();
  bad[0] ^= 0xFF;
  EXPECT_EQ(ParseHelloPayload(Slice(bad), &version).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseHelloPayload(Slice(std::string("AVQ")), &version).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, WelcomeRoundTrip) {
  uint32_t version = 0;
  std::string banner;
  ASSERT_TRUE(ParseWelcomePayload(
                  Slice(EncodeWelcomePayload(3, "avqdb test")), &version,
                  &banner)
                  .ok());
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(banner, "avqdb test");
}

TEST(ProtocolPayloads, QueryRoundTrip) {
  QueryRequest request;
  request.table = "orders";
  request.deadline_ms = 1500;
  request.max_memory_bytes = 64ull << 20;
  request.query.predicates.push_back({0, 2, 5});
  request.query.predicates.push_back({3, 0, 1u << 30});

  QueryRequest decoded;
  ASSERT_TRUE(
      ParseQueryPayload(Slice(EncodeQueryPayload(request)), &decoded).ok());
  EXPECT_EQ(decoded.table, "orders");
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.max_memory_bytes, 64ull << 20);
  ASSERT_EQ(decoded.query.predicates.size(), 2u);
  EXPECT_EQ(decoded.query.predicates[1].attribute, 3u);
  EXPECT_EQ(decoded.query.predicates[1].hi, 1u << 30);
}

TEST(ProtocolPayloads, QueryRejectsTrailingBytes) {
  QueryRequest request;
  request.table = "t";
  std::string payload = EncodeQueryPayload(request) + "x";
  QueryRequest decoded;
  EXPECT_EQ(ParseQueryPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, ResultChunkRoundTrip) {
  std::vector<OrdinalTuple> tuples = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::string payload = EncodeResultChunkPayload(tuples, 1, 3);
  std::vector<OrdinalTuple> decoded;
  ASSERT_TRUE(ParseResultChunkPayload(Slice(payload), &decoded).ok());
  EXPECT_EQ(decoded,
            std::vector<OrdinalTuple>({{4, 5, 6}, {7, 8, 9}}));
}

TEST(ProtocolPayloads, ResultChunkRejectsOverclaimedCount) {
  // A count larger than the payload could possibly hold must be caught
  // structurally, before any allocation sized from it.
  std::string payload;
  PutVarint32(&payload, 3);     // arity
  PutVarint32(&payload, 1000);  // claimed tuples
  PutVarint64(&payload, 1);
  std::vector<OrdinalTuple> decoded;
  EXPECT_EQ(ParseResultChunkPayload(Slice(payload), &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolPayloads, ErrorRoundTripAndOkRejected) {
  Status carried = Status::OK();
  ASSERT_TRUE(ParseErrorPayload(
                  Slice(EncodeErrorPayload(
                      Status::ResourceExhausted("queue full"))),
                  &carried)
                  .ok());
  EXPECT_EQ(carried.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(carried.ToString().find("queue full"), std::string::npos);

  // Wire code 0 (OK) inside an ERROR frame is malformed.
  std::string ok_payload;
  PutFixed32(&ok_payload, 0);
  PutVarint32(&ok_payload, 0);
  EXPECT_EQ(ParseErrorPayload(Slice(ok_payload), &carried).code(),
            StatusCode::kInvalidArgument);
}

// --- the stable wire-code table --------------------------------------

// Every pair is pinned to a literal number: reordering StatusCode (or
// renumbering the enum) must not change the wire. Extending StatusCode
// requires a new line here, in wire_status.cc, and in docs/PROTOCOL.md.
TEST(WireStatus, PinnedCodes) {
  const struct {
    StatusCode code;
    uint32_t wire;
  } kPins[] = {
      {StatusCode::kOk, 0},
      {StatusCode::kInvalidArgument, 1},
      {StatusCode::kNotFound, 2},
      {StatusCode::kAlreadyExists, 3},
      {StatusCode::kOutOfRange, 4},
      {StatusCode::kCorruption, 5},
      {StatusCode::kIOError, 6},
      {StatusCode::kResourceExhausted, 7},
      {StatusCode::kUnimplemented, 8},
      {StatusCode::kInternal, 9},
      {StatusCode::kUnavailable, 10},
      {StatusCode::kDeadlineExceeded, 11},
      {StatusCode::kCancelled, 12},
  };
  for (const auto& pin : kPins) {
    EXPECT_EQ(WireCodeForStatus(pin.code), pin.wire)
        << "StatusCode " << static_cast<int>(pin.code);
    bool known = false;
    EXPECT_EQ(StatusCodeForWire(pin.wire, &known), pin.code)
        << "wire code " << pin.wire;
    EXPECT_TRUE(known);
  }
}

TEST(WireStatus, UnknownWireCodeDegradesToInternal) {
  bool known = true;
  EXPECT_EQ(StatusCodeForWire(9999, &known), StatusCode::kInternal);
  EXPECT_FALSE(known);
  const Status status = MakeWireStatus(9999, "future error kind");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("future error kind"),
            std::string::npos);
}

// --- malformed frames against a live server --------------------------

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  ServerFixture fixture_{[] {
    testing::FixtureOptions options;
    options.num_tuples = 2000;
    return options;
  }()};

  // The liveness probe: after abuse, a fresh well-behaved client must
  // still get correct answers.
  void ExpectServerStillServes() {
    auto client = fixture_.Connect();
    ASSERT_NE(client, nullptr);
    QueryRequest request;
    request.table = "orders";
    request.query = RangeOn(0, 0, 2);
    auto tuples = client->Query(request);
    ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
    EXPECT_EQ(*tuples, fixture_.DirectSelect(RangeOn(0, 0, 2)));
  }
};

TEST_F(ProtocolFuzzTest, BadMagicHelloGetsErrorThenClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  std::string payload = EncodeHelloPayload();
  payload[2] ^= 0x40;
  conn.SendFrame(Opcode::kHello, 0, payload);
  EXPECT_EQ(conn.ReadErrorFor(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, UnsupportedVersionGetsErrorThenClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.SendFrame(Opcode::kHello, 0, EncodeHelloPayload(99));
  EXPECT_EQ(conn.ReadErrorFor(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, QueryBeforeHelloIsAProtocolError) {
  RawConn conn = RawConn::Connect(fixture_.port());
  QueryRequest request;
  request.table = "orders";
  conn.SendFrame(Opcode::kQuery, 1, EncodeQueryPayload(request));
  EXPECT_EQ(conn.ReadErrorFor(1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, GarbageOpcodeGetsErrorOrClose) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.Handshake();
  conn.SendFrame(static_cast<Opcode>(0xEE), 5, "junk");
  Result<Frame> frame = conn.ReadOneFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->opcode, Opcode::kError);
    EXPECT_TRUE(conn.ServerClosed());
  } else {
    EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, OversizedLengthFieldIsRejectedBeforeAllocation) {
  testing::FixtureOptions options;
  options.num_tuples = 100;
  options.server.max_frame_bytes = 4096;
  ServerFixture small(options);

  RawConn conn = RawConn::Connect(small.port());
  // A header whose length field (1 GiB) exceeds the server's cap. No
  // payload follows; the server must reject on the header alone.
  std::string header;
  PutFixed32(&header, 1u << 30);
  header.push_back(static_cast<char>(Opcode::kHello));
  PutFixed64(&header, 0);
  conn.SendBytes(header);
  Result<Frame> frame = conn.ReadOneFrame();
  if (frame.ok()) {
    EXPECT_EQ(frame->opcode, Opcode::kError);
  }
  EXPECT_TRUE(conn.ServerClosed());
}

TEST_F(ProtocolFuzzTest, TruncatedHeaderThenCloseDoesNotWedgeServer) {
  for (size_t len = 1; len < kFrameHeaderBytes; ++len) {
    RawConn conn = RawConn::Connect(fixture_.port());
    conn.SendBytes(std::string(len, '\x07'));
    conn.Close();
  }
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, TruncatedPayloadThenCloseDoesNotWedgeServer) {
  RawConn conn = RawConn::Connect(fixture_.port());
  // Header promises 100 payload bytes; only 3 arrive before EOF.
  std::string header;
  PutFixed32(&header, 100);
  header.push_back(static_cast<char>(Opcode::kHello));
  PutFixed64(&header, 0);
  conn.SendBytes(header + "abc");
  conn.Close();
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, MalformedQueryPayloadGetsTypedError) {
  RawConn conn = RawConn::Connect(fixture_.port());
  conn.Handshake();
  conn.SendFrame(Opcode::kQuery, 9, "\x01garbage-not-a-query");
  EXPECT_EQ(conn.ReadErrorFor(9).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ServerClosed());
  ExpectServerStillServes();
}

TEST_F(ProtocolFuzzTest, RandomGarbageNeverCrashesOrHangs) {
  const uint64_t before =
      testing::CounterValue(obs::kServerProtocolErrors);
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 32; ++round) {
    RawConn conn = RawConn::Connect(fixture_.port());
    ASSERT_TRUE(conn.valid());
    // Half the rounds handshake first so garbage also lands on an
    // established session.
    if (round % 2 == 1) conn.Handshake();
    std::string junk(1 + rng() % 96, '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    if (round % 4 == 0) {
      // Make the length field plausible so the server waits for a
      // payload that never fully arrives, then hits EOF.
      uint32_t claimed = static_cast<uint32_t>(rng() % 256);
      junk.replace(0, 4, std::string(4, '\0'));
      EncodeFixed32(reinterpret_cast<uint8_t*>(&junk[0]), claimed);
    }
    conn.SendBytes(junk);
    conn.Close();
  }
  // The server survives and the abuse is visible in telemetry.
  ExpectServerStillServes();
  EXPECT_GT(testing::CounterValue(obs::kServerProtocolErrors), before);
}

}  // namespace
}  // namespace avqdb::server
