// ThreadPool and parallel-loop helper tests: submission/drain ordering,
// exception propagation, reuse across batches, destruction with queued
// work, and the ParallelFor / ParallelSort contracts the codec's
// parallel paths rely on.

#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/random.h"

namespace avqdb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareParallelism) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareParallelism());
  EXPECT_GE(ThreadPool::HardwareParallelism(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  // With one worker the FIFO queue fixes the execution order exactly.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 10; ++batch) {
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([&sum] { sum.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 20);
  }
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  // Queue far more tasks than workers, some slow, and destroy the pool
  // without waiting on any future: every task must still run.
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&completed, i] {
        if (i % 10 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        completed.fetch_add(1);
      }));
    }
    // Pool destroyed here with most of the queue still pending.
  }
  EXPECT_EQ(completed.load(), 100);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([&sum] { sum.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(sum.load(), 200);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 2u, 7u, 100u, 1000u}) {
    for (size_t shards : {1u, 2u, 3u, 8u, 64u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(pool, n, shards,
                  [&hits](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " shards=" << shards
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, RangesAreContiguousAndDisjoint) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  std::atomic<size_t> calls{0};
  ParallelForRanges(pool, n, 7, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    calls.fetch_add(1);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_LE(calls.load(), 7u);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  // Shards covering [0, 100): make indices 30 and 80 throw different
  // types; the lower shard's exception must be the one rethrown.
  try {
    ParallelFor(pool, 100, 10, [](size_t i) {
      if (i == 30) throw std::runtime_error("low");
      if (i == 80) throw std::logic_error("high");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "low");
  }
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(pool, 0, 4, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelSortTest, MatchesStdSort) {
  ThreadPool pool(4);
  Random rng(20260807);
  for (size_t n : {0u, 1u, 2u, 3u, 10u, 1000u, 4097u}) {
    for (size_t shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
      std::vector<uint64_t> items(n);
      for (auto& v : items) v = rng.Uniform(1u << 20);  // many duplicates
      std::vector<uint64_t> expected = items;
      std::sort(expected.begin(), expected.end());
      ParallelSort(pool, items, shards, std::less<uint64_t>());
      EXPECT_EQ(items, expected) << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ParallelSortTest, ShardsLargerThanInput) {
  ThreadPool pool(2);
  std::vector<int> items = {5, 3, 1};
  ParallelSort(pool, items, 64, std::less<int>());
  EXPECT_EQ(items, (std::vector<int>{1, 3, 5}));
}

TEST(ResolveParallelismTest, ZeroMapsToHardware) {
  EXPECT_EQ(ResolveParallelism(0), ThreadPool::HardwareParallelism());
  EXPECT_EQ(ResolveParallelism(1), 1u);
  EXPECT_EQ(ResolveParallelism(5), 5u);
}

TEST(SharedThreadPoolTest, IsASingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), ThreadPool::HardwareParallelism());
}

}  // namespace
}  // namespace avqdb
