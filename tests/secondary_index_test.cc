#include "src/index/secondary_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/common/random.h"

namespace avqdb {
namespace {

struct Fixture {
  explicit Fixture(size_t block_size = 128)
      : device(block_size), pager(&device) {
    index = SecondaryIndex::Create(&pager, 3).value();
  }
  MemBlockDevice device;
  Pager pager;
  std::unique_ptr<SecondaryIndex> index;
};

TEST(SecondaryIndex, EmptyLookup) {
  Fixture f;
  EXPECT_TRUE(f.index->Lookup(5).value().empty());
  EXPECT_TRUE(f.index->LookupRange(0, 100).value().empty());
  EXPECT_EQ(f.index->attribute_index(), 3u);
}

TEST(SecondaryIndex, AddAndLookup) {
  Fixture f;
  ASSERT_TRUE(f.index->Add(5, 100).ok());
  ASSERT_TRUE(f.index->Add(5, 101).ok());
  ASSERT_TRUE(f.index->Add(6, 100).ok());
  auto blocks = f.index->Lookup(5).value();
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(blocks, (std::vector<BlockId>{100, 101}));
  EXPECT_EQ(f.index->Lookup(6).value(), (std::vector<BlockId>{100}));
  EXPECT_EQ(f.index->num_values(), 2u);
}

TEST(SecondaryIndex, AddIsIdempotent) {
  Fixture f;
  ASSERT_TRUE(f.index->Add(5, 100).ok());
  ASSERT_TRUE(f.index->Add(5, 100).ok());
  EXPECT_EQ(f.index->Lookup(5).value().size(), 1u);
}

TEST(SecondaryIndex, RemoveShrinksBucket) {
  Fixture f;
  ASSERT_TRUE(f.index->Add(5, 100).ok());
  ASSERT_TRUE(f.index->Add(5, 101).ok());
  ASSERT_TRUE(f.index->Remove(5, 100).ok());
  EXPECT_EQ(f.index->Lookup(5).value(), (std::vector<BlockId>{101}));
  // Removing the last posting deletes the value entirely.
  ASSERT_TRUE(f.index->Remove(5, 101).ok());
  EXPECT_TRUE(f.index->Lookup(5).value().empty());
  EXPECT_EQ(f.index->num_values(), 0u);
  // Removing an absent pair is a no-op.
  ASSERT_TRUE(f.index->Remove(5, 99).ok());
  ASSERT_TRUE(f.index->Remove(77, 1).ok());
}

TEST(SecondaryIndex, BucketChainsAcrossPages) {
  // 128-byte pages hold (128-12)/4 = 29 block ids; add 100 to force a
  // multi-page chain.
  Fixture f;
  for (BlockId b = 0; b < 100; ++b) {
    ASSERT_TRUE(f.index->Add(7, b).ok());
  }
  auto blocks = f.index->Lookup(7).value();
  ASSERT_EQ(blocks.size(), 100u);
  std::sort(blocks.begin(), blocks.end());
  for (BlockId b = 0; b < 100; ++b) EXPECT_EQ(blocks[b], b);
  EXPECT_GT(f.index->num_index_nodes(), 3u);

  // Drain the chain again.
  for (BlockId b = 0; b < 100; ++b) {
    ASSERT_TRUE(f.index->Remove(7, b).ok());
  }
  EXPECT_TRUE(f.index->Lookup(7).value().empty());
}

TEST(SecondaryIndex, LookupRangeUnionsAndDedupes) {
  Fixture f;
  ASSERT_TRUE(f.index->Add(1, 100).ok());
  ASSERT_TRUE(f.index->Add(2, 100).ok());  // same block under two values
  ASSERT_TRUE(f.index->Add(2, 101).ok());
  ASSERT_TRUE(f.index->Add(5, 102).ok());
  ASSERT_TRUE(f.index->Add(9, 103).ok());

  EXPECT_EQ(f.index->LookupRange(1, 5).value(),
            (std::vector<BlockId>{100, 101, 102}));
  EXPECT_EQ(f.index->LookupRange(0, 0).value().size(), 0u);
  EXPECT_EQ(f.index->LookupRange(9, 9).value(),
            (std::vector<BlockId>{103}));
  EXPECT_EQ(f.index->LookupRange(0, 1000).value().size(), 4u);
  // Inverted range is empty, not an error.
  EXPECT_TRUE(f.index->LookupRange(5, 1).value().empty());
}

TEST(SecondaryIndex, RandomizedMirror) {
  Fixture f;
  Random rng(31);
  // mirror[value] = set of blocks
  std::map<uint64_t, std::set<BlockId>> mirror;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t value = rng.Uniform(20);
    const BlockId block = static_cast<BlockId>(rng.Uniform(50));
    if (rng.Bernoulli(0.6)) {
      ASSERT_TRUE(f.index->Add(value, block).ok());
      mirror[value].insert(block);
    } else {
      ASSERT_TRUE(f.index->Remove(value, block).ok());
      auto it = mirror.find(value);
      if (it != mirror.end()) {
        it->second.erase(block);
        if (it->second.empty()) mirror.erase(it);
      }
    }
  }
  for (uint64_t value = 0; value < 20; ++value) {
    auto blocks = f.index->Lookup(value).value();
    std::sort(blocks.begin(), blocks.end());
    std::vector<BlockId> expected;
    if (auto it = mirror.find(value); it != mirror.end()) {
      expected.assign(it->second.begin(), it->second.end());
    }
    EXPECT_EQ(blocks, expected) << "value " << value;
  }
}

}  // namespace
}  // namespace avqdb
