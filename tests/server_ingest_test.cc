// End-to-end tests for the wire write path: MUTATE / MUTATE_OK / FLUSH
// frames against a server whose table has ingest (WAL + group commit)
// enabled, plus the error surfaces — mutations against a read-only
// table, malformed payloads, unknown tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/db/write_batch.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "tests/server_test_util.h"

namespace avqdb::server {
namespace {

using avqdb::server::testing::RangeOn;
using avqdb::server::testing::ServerFixture;

// A fixture tuple mutated through the wire in these tests. Fixture
// domains are {8, 16, 64, 64, 64}.
OrdinalTuple FreshTuple(const ServerFixture& fixture, uint64_t salt) {
  std::set<OrdinalTuple> base(fixture.tuples().begin(),
                              fixture.tuples().end());
  OrdinalTuple t{salt % 8, salt % 16, salt % 64, (salt / 3) % 64,
                 (salt / 7) % 64};
  while (base.contains(t)) {
    t[4] = (t[4] + 1) % 64;
    t[3] = t[4] == 0 ? (t[3] + 1) % 64 : t[3];
  }
  return t;
}

TEST(ServerIngest, MutateCommitsAndQueriesSeeIt) {
  testing::FixtureOptions options;
  options.num_tuples = 2000;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  const OrdinalTuple added = FreshTuple(fixture, 0x91);
  MutateRequest request;
  request.table = "orders";
  request.batch.Insert(added);
  auto commit_seq = client->Mutate(request);
  ASSERT_TRUE(commit_seq.ok()) << commit_seq.status().ToString();
  EXPECT_EQ(*commit_seq, 1u);

  // Read-your-writes on the same session: the strand runs the QUERY
  // after the MUTATE, and the snapshot includes every durable commit.
  QueryRequest query;
  query.table = "orders";
  query.query = RangeOn(0, added[0], added[0]);
  auto rows = client->Query(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(std::find(rows->begin(), rows->end(), added) != rows->end());

  // Delete it again; the next query no longer sees it.
  MutateRequest erase;
  erase.table = "orders";
  erase.batch.Delete(added);
  auto erase_seq = client->Mutate(erase);
  ASSERT_TRUE(erase_seq.ok()) << erase_seq.status().ToString();
  EXPECT_EQ(*erase_seq, 2u);
  rows = client->Query(query);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(std::find(rows->begin(), rows->end(), added) == rows->end());
}

TEST(ServerIngest, FlushReportsDurableSeqAndConflictsSurface) {
  testing::FixtureOptions options;
  options.num_tuples = 2000;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  const OrdinalTuple added = FreshTuple(fixture, 0x17);
  MutateRequest request;
  request.table = "orders";
  request.batch.Insert(added);
  ASSERT_TRUE(client->Mutate(request).ok());

  FlushRequest flush;
  flush.table = "orders";
  auto flushed = client->Flush(flush);
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(*flushed, 1u);

  // Conflicts travel the wire as their status codes: inserting the same
  // tuple again is AlreadyExists, deleting a phantom is NotFound.
  auto dup = client->Mutate(request);
  ASSERT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists()) << dup.status().ToString();

  MutateRequest phantom;
  phantom.table = "orders";
  phantom.batch.Delete(FreshTuple(fixture, 0x55));
  auto missing = client->Mutate(phantom);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  // Unknown tables too.
  MutateRequest unknown;
  unknown.table = "no-such-table";
  unknown.batch.Insert(added);
  auto status = client->Mutate(unknown);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.status().IsNotFound()) << status.status().ToString();
}

TEST(ServerIngest, MutateWithoutIngestIsInvalidArgument) {
  testing::FixtureOptions options;
  options.num_tuples = 1000;
  ServerFixture fixture(options);  // no EnableWriteAhead
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  MutateRequest request;
  request.table = "orders";
  request.batch.Insert(FreshTuple(fixture, 0x3));
  auto result = client->Mutate(request);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();

  FlushRequest flush;
  flush.table = "orders";
  auto flushed = client->Flush(flush);
  ASSERT_FALSE(flushed.ok());
  EXPECT_TRUE(flushed.status().IsInvalidArgument())
      << flushed.status().ToString();
}

TEST(ServerIngest, MalformedMutatePayloadGetsErrorFrame) {
  testing::FixtureOptions options;
  options.num_tuples = 1000;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());

  auto conn = testing::RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn.valid());
  conn.Handshake();
  // Truncated garbage where a MUTATE payload should be: the server
  // answers with a well-formed ERROR frame and closes the session (the
  // same protocol-fatal treatment a malformed QUERY gets).
  conn.SendFrame(Opcode::kMutate, 7, std::string("\x02garbage", 8));
  Status error = conn.ReadErrorFor(7);
  EXPECT_FALSE(error.ok());
  EXPECT_TRUE(conn.ServerClosed());

  // Other sessions are unaffected: a valid FLUSH on a fresh connection
  // still works.
  auto conn2 = testing::RawConn::Connect(fixture.port());
  ASSERT_TRUE(conn2.valid());
  conn2.Handshake();
  conn2.SendFrame(Opcode::kFlush, 8, EncodeFlushPayload(FlushRequest{
                                         .table = "orders"}));
  auto reply = conn2.ReadOneFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->opcode, Opcode::kMutateOk);
  EXPECT_EQ(reply->request_id, 8u);
}

TEST(ServerIngest, GoodbyeRacingMutateNeverAcksAndDrops) {
  testing::FixtureOptions options;
  options.num_tuples = 1000;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());

  // MUTATE and GOODBYE land in one write: the graceful drain must
  // either commit the batch AND deliver its MUTATE_OK, or reject it
  // cleanly — an ack for a batch that never commits (or a commit whose
  // ack is dropped on the floor during drain) breaks exactly-once.
  for (uint64_t round = 0; round < 16; ++round) {
    auto conn = testing::RawConn::Connect(fixture.port());
    ASSERT_TRUE(conn.valid());
    conn.Handshake();

    const OrdinalTuple added = FreshTuple(fixture, 0x7000 + round * 17);
    MutateRequest request;
    request.table = "orders";
    request.batch.Insert(added);
    std::string burst =
        EncodeFrame(Opcode::kMutate, 31, Slice(EncodeMutatePayload(request)));
    burst += EncodeFrame(Opcode::kGoodbye, 0, Slice());
    conn.SendBytes(burst);

    bool acked = false;
    auto reply = conn.ReadOneFrame();
    if (reply.ok() && reply->opcode == Opcode::kMutateOk) {
      ASSERT_EQ(reply->request_id, 31u);
      acked = true;
    } else if (reply.ok()) {
      // A clean rejection must be a well-formed ERROR for the request.
      ASSERT_EQ(reply->opcode, Opcode::kError) << "round " << round;
      ASSERT_EQ(reply->request_id, 31u);
    } else {
      // No reply at all is only acceptable as a clean close — and then
      // the batch must NOT have committed.
      ASSERT_TRUE(reply.status().IsNotFound())
          << "round " << round << ": " << reply.status().ToString();
    }

    auto checker = fixture.Connect();
    ASSERT_NE(checker, nullptr);
    QueryRequest query;
    query.table = "orders";
    query.query = RangeOn(0, added[0], added[0]);
    auto rows = checker->Query(query);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    const bool present =
        std::find(rows->begin(), rows->end(), added) != rows->end();
    EXPECT_EQ(present, acked)
        << "round " << round << ": drain "
        << (acked ? "acked a batch that is not committed"
                  : "committed a batch without delivering its ack");
  }
}

TEST(ServerIngest, ConcurrentSessionsShareGroupCommit) {
  testing::FixtureOptions options;
  options.num_tuples = 2000;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.db().EnableWriteAhead("orders").ok());

  // Several sessions write disjoint tuples concurrently; every commit
  // must be acknowledged with a unique sequence and every tuple must be
  // visible afterwards.
  constexpr int kSessions = 4;
  constexpr int kWritesPerSession = 12;
  std::vector<std::vector<uint64_t>> seqs(kSessions);
  std::vector<std::vector<OrdinalTuple>> written(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      auto client = fixture.Connect();
      ASSERT_NE(client, nullptr);
      for (int i = 0; i < kWritesPerSession; ++i) {
        // Partition by attribute 1 (16 values >= kSessions).
        OrdinalTuple t = FreshTuple(
            fixture, 0x1000 + static_cast<uint64_t>(s * 100 + i));
        t[1] = static_cast<uint64_t>(s);
        t[2] = static_cast<uint64_t>(i);
        MutateRequest request;
        request.table = "orders";
        request.batch.Insert(t);
        auto seq = client->Mutate(request);
        if (!seq.ok() && seq.status().IsAlreadyExists()) continue;
        ASSERT_TRUE(seq.ok()) << seq.status().ToString();
        seqs[s].push_back(*seq);
        written[s].push_back(std::move(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<uint64_t> all_seqs;
  size_t total = 0;
  for (const auto& log : seqs) {
    total += log.size();
    all_seqs.insert(log.begin(), log.end());
    // Per session the strand preserves order: sequences ascend.
    EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
  }
  EXPECT_EQ(all_seqs.size(), total);  // no sequence handed out twice

  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  for (int s = 0; s < kSessions; ++s) {
    for (const OrdinalTuple& t : written[s]) {
      QueryRequest query;
      query.table = "orders";
      query.query = RangeOn(1, t[1], t[1]);
      auto rows = client->Query(query);
      ASSERT_TRUE(rows.ok());
      EXPECT_TRUE(std::find(rows->begin(), rows->end(), t) != rows->end());
    }
  }
}

}  // namespace
}  // namespace avqdb::server
