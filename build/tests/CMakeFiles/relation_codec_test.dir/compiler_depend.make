# Empty compiler generated dependencies file for relation_codec_test.
# This may be replaced when dependencies are built.
