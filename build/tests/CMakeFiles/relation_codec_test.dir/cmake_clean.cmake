file(REMOVE_RECURSE
  "CMakeFiles/relation_codec_test.dir/relation_codec_test.cc.o"
  "CMakeFiles/relation_codec_test.dir/relation_codec_test.cc.o.d"
  "relation_codec_test"
  "relation_codec_test.pdb"
  "relation_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
