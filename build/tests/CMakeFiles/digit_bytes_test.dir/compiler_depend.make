# Empty compiler generated dependencies file for digit_bytes_test.
# This may be replaced when dependencies are built.
