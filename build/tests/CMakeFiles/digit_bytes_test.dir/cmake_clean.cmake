file(REMOVE_RECURSE
  "CMakeFiles/digit_bytes_test.dir/digit_bytes_test.cc.o"
  "CMakeFiles/digit_bytes_test.dir/digit_bytes_test.cc.o.d"
  "digit_bytes_test"
  "digit_bytes_test.pdb"
  "digit_bytes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_bytes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
