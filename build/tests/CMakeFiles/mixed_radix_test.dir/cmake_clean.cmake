file(REMOVE_RECURSE
  "CMakeFiles/mixed_radix_test.dir/mixed_radix_test.cc.o"
  "CMakeFiles/mixed_radix_test.dir/mixed_radix_test.cc.o.d"
  "mixed_radix_test"
  "mixed_radix_test.pdb"
  "mixed_radix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_radix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
