# Empty dependencies file for mixed_radix_test.
# This may be replaced when dependencies are built.
