# Empty dependencies file for format_conformance_test.
# This may be replaced when dependencies are built.
