file(REMOVE_RECURSE
  "CMakeFiles/format_conformance_test.dir/format_conformance_test.cc.o"
  "CMakeFiles/format_conformance_test.dir/format_conformance_test.cc.o.d"
  "format_conformance_test"
  "format_conformance_test.pdb"
  "format_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
