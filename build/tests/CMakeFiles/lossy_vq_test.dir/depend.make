# Empty dependencies file for lossy_vq_test.
# This may be replaced when dependencies are built.
