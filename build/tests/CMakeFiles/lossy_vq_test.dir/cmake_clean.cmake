file(REMOVE_RECURSE
  "CMakeFiles/lossy_vq_test.dir/lossy_vq_test.cc.o"
  "CMakeFiles/lossy_vq_test.dir/lossy_vq_test.cc.o.d"
  "lossy_vq_test"
  "lossy_vq_test.pdb"
  "lossy_vq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_vq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
