file(REMOVE_RECURSE
  "CMakeFiles/block_codecs_test.dir/block_codecs_test.cc.o"
  "CMakeFiles/block_codecs_test.dir/block_codecs_test.cc.o.d"
  "block_codecs_test"
  "block_codecs_test.pdb"
  "block_codecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_codecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
