# Empty dependencies file for block_codecs_test.
# This may be replaced when dependencies are built.
