# Empty compiler generated dependencies file for primary_index_test.
# This may be replaced when dependencies are built.
