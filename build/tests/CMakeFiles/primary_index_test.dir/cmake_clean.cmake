file(REMOVE_RECURSE
  "CMakeFiles/primary_index_test.dir/primary_index_test.cc.o"
  "CMakeFiles/primary_index_test.dir/primary_index_test.cc.o.d"
  "primary_index_test"
  "primary_index_test.pdb"
  "primary_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
