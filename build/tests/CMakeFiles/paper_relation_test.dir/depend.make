# Empty dependencies file for paper_relation_test.
# This may be replaced when dependencies are built.
