file(REMOVE_RECURSE
  "CMakeFiles/paper_relation_test.dir/paper_relation_test.cc.o"
  "CMakeFiles/paper_relation_test.dir/paper_relation_test.cc.o.d"
  "paper_relation_test"
  "paper_relation_test.pdb"
  "paper_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
