file(REMOVE_RECURSE
  "CMakeFiles/block_codec_test.dir/block_codec_test.cc.o"
  "CMakeFiles/block_codec_test.dir/block_codec_test.cc.o.d"
  "block_codec_test"
  "block_codec_test.pdb"
  "block_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
