file(REMOVE_RECURSE
  "CMakeFiles/lbg_test.dir/lbg_test.cc.o"
  "CMakeFiles/lbg_test.dir/lbg_test.cc.o.d"
  "lbg_test"
  "lbg_test.pdb"
  "lbg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
