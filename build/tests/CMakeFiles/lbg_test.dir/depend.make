# Empty dependencies file for lbg_test.
# This may be replaced when dependencies are built.
