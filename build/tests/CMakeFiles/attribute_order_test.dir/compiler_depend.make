# Empty compiler generated dependencies file for attribute_order_test.
# This may be replaced when dependencies are built.
