file(REMOVE_RECURSE
  "CMakeFiles/attribute_order_test.dir/attribute_order_test.cc.o"
  "CMakeFiles/attribute_order_test.dir/attribute_order_test.cc.o.d"
  "attribute_order_test"
  "attribute_order_test.pdb"
  "attribute_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
