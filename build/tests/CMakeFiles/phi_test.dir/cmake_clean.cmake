file(REMOVE_RECURSE
  "CMakeFiles/phi_test.dir/phi_test.cc.o"
  "CMakeFiles/phi_test.dir/phi_test.cc.o.d"
  "phi_test"
  "phi_test.pdb"
  "phi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
