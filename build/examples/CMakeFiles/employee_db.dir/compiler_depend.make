# Empty compiler generated dependencies file for employee_db.
# This may be replaced when dependencies are built.
