file(REMOVE_RECURSE
  "CMakeFiles/employee_db.dir/employee_db.cpp.o"
  "CMakeFiles/employee_db.dir/employee_db.cpp.o.d"
  "employee_db"
  "employee_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
