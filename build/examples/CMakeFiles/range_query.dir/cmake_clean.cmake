file(REMOVE_RECURSE
  "CMakeFiles/range_query.dir/range_query.cpp.o"
  "CMakeFiles/range_query.dir/range_query.cpp.o.d"
  "range_query"
  "range_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
