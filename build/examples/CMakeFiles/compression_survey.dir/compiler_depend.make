# Empty compiler generated dependencies file for compression_survey.
# This may be replaced when dependencies are built.
