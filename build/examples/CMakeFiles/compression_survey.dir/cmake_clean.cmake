file(REMOVE_RECURSE
  "CMakeFiles/compression_survey.dir/compression_survey.cpp.o"
  "CMakeFiles/compression_survey.dir/compression_survey.cpp.o.d"
  "compression_survey"
  "compression_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
