# Empty compiler generated dependencies file for avq_csvload.
# This may be replaced when dependencies are built.
