file(REMOVE_RECURSE
  "CMakeFiles/avq_csvload.dir/avq_csvload.cc.o"
  "CMakeFiles/avq_csvload.dir/avq_csvload.cc.o.d"
  "avq_csvload"
  "avq_csvload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avq_csvload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
