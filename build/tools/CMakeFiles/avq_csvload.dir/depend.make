# Empty dependencies file for avq_csvload.
# This may be replaced when dependencies are built.
