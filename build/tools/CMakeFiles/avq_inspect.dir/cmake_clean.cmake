file(REMOVE_RECURSE
  "CMakeFiles/avq_inspect.dir/avq_inspect.cc.o"
  "CMakeFiles/avq_inspect.dir/avq_inspect.cc.o.d"
  "avq_inspect"
  "avq_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avq_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
