# Empty compiler generated dependencies file for avq_inspect.
# This may be replaced when dependencies are built.
