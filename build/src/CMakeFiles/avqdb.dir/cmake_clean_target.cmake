file(REMOVE_RECURSE
  "libavqdb.a"
)
