
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avq/attribute_order.cc" "src/CMakeFiles/avqdb.dir/avq/attribute_order.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/avq/attribute_order.cc.o.d"
  "/root/repo/src/avq/block_decoder.cc" "src/CMakeFiles/avqdb.dir/avq/block_decoder.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/avq/block_decoder.cc.o.d"
  "/root/repo/src/avq/block_encoder.cc" "src/CMakeFiles/avqdb.dir/avq/block_encoder.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/avq/block_encoder.cc.o.d"
  "/root/repo/src/avq/relation_codec.cc" "src/CMakeFiles/avqdb.dir/avq/relation_codec.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/avq/relation_codec.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/avqdb.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/avqdb.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/avqdb.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/avqdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/avqdb.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/common/string_util.cc.o.d"
  "/root/repo/src/db/block_codecs.cc" "src/CMakeFiles/avqdb.dir/db/block_codecs.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/block_codecs.cc.o.d"
  "/root/repo/src/db/cost_model.cc" "src/CMakeFiles/avqdb.dir/db/cost_model.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/cost_model.cc.o.d"
  "/root/repo/src/db/csv_import.cc" "src/CMakeFiles/avqdb.dir/db/csv_import.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/csv_import.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/avqdb.dir/db/database.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/database.cc.o.d"
  "/root/repo/src/db/join.cc" "src/CMakeFiles/avqdb.dir/db/join.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/join.cc.o.d"
  "/root/repo/src/db/query.cc" "src/CMakeFiles/avqdb.dir/db/query.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/query.cc.o.d"
  "/root/repo/src/db/statistics.cc" "src/CMakeFiles/avqdb.dir/db/statistics.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/statistics.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/avqdb.dir/db/table.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/table.cc.o.d"
  "/root/repo/src/db/table_io.cc" "src/CMakeFiles/avqdb.dir/db/table_io.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/db/table_io.cc.o.d"
  "/root/repo/src/index/bptree.cc" "src/CMakeFiles/avqdb.dir/index/bptree.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/index/bptree.cc.o.d"
  "/root/repo/src/index/primary_index.cc" "src/CMakeFiles/avqdb.dir/index/primary_index.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/index/primary_index.cc.o.d"
  "/root/repo/src/index/secondary_index.cc" "src/CMakeFiles/avqdb.dir/index/secondary_index.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/index/secondary_index.cc.o.d"
  "/root/repo/src/ordinal/digit_bytes.cc" "src/CMakeFiles/avqdb.dir/ordinal/digit_bytes.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/ordinal/digit_bytes.cc.o.d"
  "/root/repo/src/ordinal/mixed_radix.cc" "src/CMakeFiles/avqdb.dir/ordinal/mixed_radix.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/ordinal/mixed_radix.cc.o.d"
  "/root/repo/src/ordinal/phi.cc" "src/CMakeFiles/avqdb.dir/ordinal/phi.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/ordinal/phi.cc.o.d"
  "/root/repo/src/schema/dictionary.cc" "src/CMakeFiles/avqdb.dir/schema/dictionary.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/dictionary.cc.o.d"
  "/root/repo/src/schema/domain.cc" "src/CMakeFiles/avqdb.dir/schema/domain.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/domain.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/avqdb.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/schema.cc.o.d"
  "/root/repo/src/schema/schema_io.cc" "src/CMakeFiles/avqdb.dir/schema/schema_io.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/schema_io.cc.o.d"
  "/root/repo/src/schema/tuple.cc" "src/CMakeFiles/avqdb.dir/schema/tuple.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/tuple.cc.o.d"
  "/root/repo/src/schema/value.cc" "src/CMakeFiles/avqdb.dir/schema/value.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/schema/value.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/CMakeFiles/avqdb.dir/storage/block_device.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/storage/block_device.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/avqdb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/CMakeFiles/avqdb.dir/storage/disk_model.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/storage/disk_model.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/avqdb.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/storage/pager.cc.o.d"
  "/root/repo/src/vq/lbg.cc" "src/CMakeFiles/avqdb.dir/vq/lbg.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/vq/lbg.cc.o.d"
  "/root/repo/src/vq/lossy_vq.cc" "src/CMakeFiles/avqdb.dir/vq/lossy_vq.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/vq/lossy_vq.cc.o.d"
  "/root/repo/src/workload/distributions.cc" "src/CMakeFiles/avqdb.dir/workload/distributions.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/workload/distributions.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/avqdb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/paper_relation.cc" "src/CMakeFiles/avqdb.dir/workload/paper_relation.cc.o" "gcc" "src/CMakeFiles/avqdb.dir/workload/paper_relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
