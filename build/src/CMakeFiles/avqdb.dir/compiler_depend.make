# Empty compiler generated dependencies file for avqdb.
# This may be replaced when dependencies are built.
