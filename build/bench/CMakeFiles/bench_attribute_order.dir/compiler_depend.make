# Empty compiler generated dependencies file for bench_attribute_order.
# This may be replaced when dependencies are built.
