file(REMOVE_RECURSE
  "CMakeFiles/bench_attribute_order.dir/bench_attribute_order.cc.o"
  "CMakeFiles/bench_attribute_order.dir/bench_attribute_order.cc.o.d"
  "bench_attribute_order"
  "bench_attribute_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attribute_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
