# Empty dependencies file for bench_blocks_accessed.
# This may be replaced when dependencies are built.
