file(REMOVE_RECURSE
  "CMakeFiles/bench_blocks_accessed.dir/bench_blocks_accessed.cc.o"
  "CMakeFiles/bench_blocks_accessed.dir/bench_blocks_accessed.cc.o.d"
  "bench_blocks_accessed"
  "bench_blocks_accessed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocks_accessed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
