# Empty dependencies file for bench_codec_time.
# This may be replaced when dependencies are built.
