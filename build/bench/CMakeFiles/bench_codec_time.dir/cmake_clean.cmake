file(REMOVE_RECURSE
  "CMakeFiles/bench_codec_time.dir/bench_codec_time.cc.o"
  "CMakeFiles/bench_codec_time.dir/bench_codec_time.cc.o.d"
  "bench_codec_time"
  "bench_codec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
