# Empty compiler generated dependencies file for bench_block_size.
# This may be replaced when dependencies are built.
