# Empty dependencies file for bench_codebook.
# This may be replaced when dependencies are built.
