file(REMOVE_RECURSE
  "CMakeFiles/bench_codebook.dir/bench_codebook.cc.o"
  "CMakeFiles/bench_codebook.dir/bench_codebook.cc.o.d"
  "bench_codebook"
  "bench_codebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
