// Quickstart: define a schema, load rows into an AVQ-compressed table,
// run a selection, and look at the storage savings.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/db/database.h"
#include "src/db/query.h"
#include "src/schema/domain.h"

using namespace avqdb;

int main() {
  // 1. A schema is an ordered list of attributes, each with a finite
  //    domain. Domain cardinalities are the radices of the tuple space.
  auto city = CategoricalDomain::Create(
                  {"amsterdam", "berlin", "chicago", "detroit"})
                  .value();
  std::vector<Attribute> attrs = {
      {"city", city},
      {"temperature_c", std::make_shared<IntegerRangeDomain>(-40, 50)},
      {"humidity_pct", std::make_shared<IntegerRangeDomain>(0, 100)},
      {"station_id", std::make_shared<IntegerRangeDomain>(0, 9999)},
  };
  auto schema = Schema::Create(std::move(attrs)).value();
  std::printf("%s\n", schema->ToString().c_str());

  // 2. A Database hands out tables; kAvq stores blocks AVQ-compressed,
  //    kHeap stores plain fixed-width tuples (the comparison baseline).
  Database db(/*block_size=*/4096);
  Table* readings = db.CreateTable("readings", schema, TableKind::kAvq).value();

  // 3. Insert rows; values are domain-mapped to ordinals automatically.
  int inserted = 0;
  for (int station = 0; station < 2000; ++station) {
    const char* where =
        (station % 4 == 0) ? "amsterdam"
        : (station % 4 == 1) ? "berlin"
        : (station % 4 == 2) ? "chicago" : "detroit";
    Row row = {Value(where), Value(int64_t{10 + station % 15}),
               Value(int64_t{40 + (station * 7) % 50}),
               Value(int64_t{station})};
    Status s = readings->InsertRow(row);
    if (s.ok()) ++inserted;
  }
  std::printf("inserted %d rows into %llu data blocks (%llu index blocks)\n",
              inserted,
              static_cast<unsigned long long>(readings->DataBlockCount()),
              static_cast<unsigned long long>(readings->IndexBlockCount()));

  // 4. Range selection: sigma_{18 <= temperature <= 22}. The executor
  //    reports exactly which blocks it had to read.
  QueryStats stats;
  auto rows = ExecuteRangeSelectRows(*readings, "temperature_c",
                                     Value(int64_t{18}), Value(int64_t{22}),
                                     &stats)
                  .value();
  std::printf("query matched %zu rows; %s\n", rows.size(),
              stats.ToString().c_str());
  for (size_t i = 0; i < rows.size() && i < 3; ++i) {
    std::printf("  %s\n", RowToString(rows[i]).c_str());
  }

  // 5. Compare against the uncompressed baseline: bulk-load both stores
  //    from the same tuples (insert-built tables sit around half full,
  //    like any B-tree; bulk loads pack to 100%).
  auto tuples = readings->ScanAll().value();
  Table* packed =
      db.CreateTable("readings_packed", schema, TableKind::kAvq).value();
  Table* baseline =
      db.CreateTable("readings_raw", schema, TableKind::kHeap).value();
  AVQDB_CHECK_OK(packed->BulkLoad(tuples));
  AVQDB_CHECK_OK(baseline->BulkLoad(tuples));
  std::printf(
      "storage (bulk-loaded): AVQ %llu blocks vs uncoded %llu blocks "
      "(%.1f%% smaller)\n",
      static_cast<unsigned long long>(packed->DataBlockCount()),
      static_cast<unsigned long long>(baseline->DataBlockCount()),
      100.0 * (1.0 - static_cast<double>(packed->DataBlockCount()) /
                         static_cast<double>(baseline->DataBlockCount())));

  // 6. Deleting is symmetric; the affected block is re-coded in place.
  AVQDB_CHECK_OK(readings->DeleteRow(
      {Value("amsterdam"), Value(int64_t{10}), Value(int64_t{40}),
       Value(int64_t{0})}));
  std::printf("after delete: %llu rows\n",
              static_cast<unsigned long long>(readings->num_tuples()));
  return 0;
}
