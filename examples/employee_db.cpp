// employee_db: a guided tour of the paper using its own running example —
// the 50-tuple employee relation of Fig 2.2. Walks every pipeline stage:
// domain mapping (§3.1), φ and tuple re-ordering (§3.2), block coding with
// the exact byte stream of §3.4, and tuple insertion (§4.2, Fig 4.6).

#include <algorithm>
#include <cstdio>

#include "src/avq/block_decoder.h"
#include "src/avq/block_encoder.h"
#include "src/common/string_util.h"
#include "src/db/database.h"
#include "src/db/query.h"
#include "src/ordinal/phi.h"
#include "src/workload/paper_relation.h"

using namespace avqdb;

int main() {
  auto schema = PaperEmployeeSchema();
  auto rows = PaperEmployeeRows();
  auto tuples = PaperEmployeeTuples();

  std::printf("== Stage 1: attribute encoding (Fig 2.2 tables a -> b) ==\n");
  for (size_t i : {0ull, 1ull, 2ull}) {
    std::printf("  %-55s -> %s\n", RowToString(rows[i]).c_str(),
                TupleToString(tuples[i]).c_str());
  }

  std::printf("\n== Stage 2: phi ordinals and re-ordering (table c) ==\n");
  auto sorted = tuples;
  std::sort(sorted.begin(), sorted.end(),
            [](const OrdinalTuple& a, const OrdinalTuple& b) {
              return CompareTuples(a, b) < 0;
            });
  for (size_t i = 0; i < 3; ++i) {
    auto phi = Phi(schema->radices(), sorted[i]).value();
    std::printf("  %-22s phi = %s\n", TupleToString(sorted[i]).c_str(),
                U128ToString(phi).c_str());
  }
  std::printf("  ... (%zu tuples total, space |R| = %s)\n", sorted.size(),
              U128ToString(schema->space_size_u128()).c_str());

  std::printf("\n== Stage 3: block coding (SS 3.4, Fig 3.3) ==\n");
  // The paper's worked block (Fig 3.3 table a) starts at (3,08,32,25,19).
  const OrdinalTuple block_start = {3, 8, 32, 25, 19};
  auto start_it = std::lower_bound(
      sorted.begin(), sorted.end(), block_start,
      [](const OrdinalTuple& a, const OrdinalTuple& b) {
        return CompareTuples(a, b) < 0;
      });
  AVQDB_CHECK(start_it + 5 <= sorted.end(), "worked block not found");
  std::vector<OrdinalTuple> block_tuples(start_it, start_it + 5);
  CodecOptions options;
  options.checksum = false;
  BlockEncoder encoder(schema, options);
  for (const auto& t : block_tuples) {
    AVQDB_CHECK(encoder.TryAdd(t).value(), "block overflow");
  }
  std::printf("  representative (median) = %s\n",
              TupleToString(block_tuples[encoder.representative_index()])
                  .c_str());
  auto block = encoder.Finish().value();
  auto decoded = DecodeBlock(*schema, Slice(block)).value();
  const size_t payload = decoded.header.payload_size;
  std::printf("  coded stream (%zu bytes for %zu tuples of %zu bytes):\n  ",
              payload, block_tuples.size(),
              block_tuples.size() * schema->tuple_width());
  std::printf("%s\n",
              HexDump(reinterpret_cast<const uint8_t*>(block.data()) +
                          kBlockHeaderSize,
                      payload)
                  .c_str());
  AVQDB_CHECK(decoded.tuples == block_tuples, "round trip failed");
  std::printf("  decodes losslessly back to the 5 tuples (Theorem 2.1).\n");

  std::printf("\n== Stage 4: a queryable compressed table (SS 4) ==\n");
  Database db(/*block_size=*/64);  // small blocks so 50 tuples spread out
  Table* table = db.CreateTable("employees", schema, TableKind::kAvq).value();
  for (const Row& row : rows) {
    AVQDB_CHECK_OK(table->InsertRow(row));
  }
  std::printf("  %llu tuples in %llu data blocks + %llu index blocks\n",
              static_cast<unsigned long long>(table->num_tuples()),
              static_cast<unsigned long long>(table->DataBlockCount()),
              static_cast<unsigned long long>(table->IndexBlockCount()));

  AVQDB_CHECK_OK(table->CreateSecondaryIndex(
      schema->AttributeIndex("employee_number").value()));
  QueryStats stats;
  auto managers = ExecuteRangeSelectRows(*table, "employee_number",
                                         Value(int64_t{34}),
                                         Value(int64_t{34}), &stats)
                      .value();
  std::printf("  sigma_{employee_number = 34}: %s -> %s\n",
              stats.ToString().c_str(),
              RowToString(managers.at(0)).c_str());

  std::printf("\n== Stage 5: insertion into a coded block (Fig 4.6) ==\n");
  Row newcomer = {Value("production"), Value("manager"), Value(int64_t{32}),
                  Value(int64_t{25}), Value(int64_t{63})};
  AVQDB_CHECK_OK(table->InsertRow(newcomer));
  std::printf("  inserted %s\n", RowToString(newcomer).c_str());
  auto check = ExecuteRangeSelectRows(*table, "employee_number",
                                      Value(int64_t{63}), Value(int64_t{63}),
                                      nullptr)
                   .value();
  std::printf("  re-read it through the index: %s\n",
              RowToString(check.at(0)).c_str());
  std::printf("  table now holds %llu tuples; only the affected block was "
              "re-coded.\n",
              static_cast<unsigned long long>(table->num_tuples()));
  return 0;
}
