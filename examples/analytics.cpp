// analytics: the relational layer over compressed storage — conjunctive
// selections, projection, aggregation, statistics-driven planning and a
// join, all running directly on AVQ-coded blocks.
//
// Scenario: order lines joined against a region dimension.

#include <cstdio>
#include <memory>
#include <set>

#include "src/common/random.h"
#include "src/db/join.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/schema/domain.h"

using namespace avqdb;

int main() {
  // orders(region_id, product, quarter, quantity, order_id)
  auto orders_schema =
      Schema::Create({
          {"region_id", std::make_shared<IntegerRangeDomain>(0, 15)},
          {"product", std::make_shared<IntegerRangeDomain>(0, 99)},
          {"quarter", std::make_shared<IntegerRangeDomain>(0, 7)},
          {"quantity", std::make_shared<IntegerRangeDomain>(1, 50)},
          {"order_id", std::make_shared<IntegerRangeDomain>(0, 999999)},
      }).value();
  // regions(region_id, country, priority)
  auto regions_schema =
      Schema::Create({
          {"region_id", std::make_shared<IntegerRangeDomain>(0, 15)},
          {"country", std::make_shared<IntegerRangeDomain>(0, 7)},
          {"priority", std::make_shared<IntegerRangeDomain>(0, 3)},
      }).value();

  MemBlockDevice orders_device(4096), regions_device(4096);
  auto orders = Table::CreateAvq(orders_schema, &orders_device).value();
  auto regions = Table::CreateAvq(regions_schema, &regions_device).value();

  Random rng(2026);
  std::set<OrdinalTuple> order_rows;
  uint64_t order_id = 0;
  while (order_rows.size() < 40000) {
    // Regions are skewed: region 2 dominates.
    const uint64_t region = rng.Bernoulli(0.5) ? 2 : rng.Uniform(16);
    // Tuples here are ordinals: quantity ordinal q encodes value q+1.
    order_rows.insert({region, rng.Uniform(100), rng.Uniform(8),
                       rng.Uniform(50), order_id++});
  }
  AVQDB_CHECK_OK(orders->BulkLoad(
      std::vector<OrdinalTuple>(order_rows.begin(), order_rows.end())));
  for (uint64_t r = 0; r < 16; ++r) {
    AVQDB_CHECK_OK(regions->Insert({r, r % 8, r % 4}));
  }
  std::printf("orders: %llu rows in %llu AVQ blocks\n",
              static_cast<unsigned long long>(orders->num_tuples()),
              static_cast<unsigned long long>(orders->DataBlockCount()));

  // Secondary indexes + statistics enable informed planning.
  AVQDB_CHECK_OK(orders->CreateSecondaryIndex(1));  // product
  AVQDB_CHECK_OK(orders->CreateSecondaryIndex(2));  // quarter
  AVQDB_CHECK_OK(orders->Analyze());

  // Q1: total quantity of product 7 in quarters 2-3.
  ConjunctiveQuery q1;
  q1.predicates = {{1, 7, 7}, {2, 2, 3}};
  QueryStats stats;
  auto agg = ExecuteAggregate(*orders, q1, 3, &stats).value();
  std::printf(
      "Q1 sum(quantity) where product=7 and quarter in [2,3]:\n"
      "   count=%llu sum=%llu (driver attribute %zu, %s)\n",
      static_cast<unsigned long long>(agg.count),
      static_cast<unsigned long long>(static_cast<uint64_t>(agg.sum)),
      stats.driver_attribute + 1, stats.ToString().c_str());

  // Q2: distinct products sold in the hot region.
  ConjunctiveQuery q2;
  q2.predicates = {{0, 2, 2}};
  auto products =
      ExecuteProject(*orders, q2, {1}, /*distinct=*/true, &stats).value();
  std::printf("Q2 distinct products in region 2: %zu (%s)\n",
              products.size(), stats.ToString().c_str());

  // Q3: join orders with regions on region_id (both clustered: merge).
  JoinStats join_stats;
  auto joined =
      ExecuteEquiJoin(*orders, 0, *regions, 0, JoinStrategy::kAuto,
                      &join_stats)
          .value();
  std::printf("Q3 orders |><| regions: %s\n", join_stats.ToString().c_str());

  // Q4: from the join, count high-priority (3) order lines.
  uint64_t high_priority = 0;
  for (const auto& row : joined) {
    if (row[7] == 3) ++high_priority;  // regions.priority is column 8
  }
  std::printf("Q4 high-priority order lines: %llu of %zu\n",
              static_cast<unsigned long long>(high_priority), joined.size());
  return 0;
}
