// range_query: the paper's I/O-bandwidth argument (§5.3) made tangible.
// Loads the same relation into a compressed and an uncompressed store,
// runs the selection σ_{a ≤ A_k ≤ b} through each access path, and prices
// every query with the disk model — showing where compression pays.

#include <cstdio>

#include "src/db/cost_model.h"
#include "src/db/query.h"
#include "src/db/table.h"
#include "src/workload/generator.h"

using namespace avqdb;

namespace {

void Report(const char* label, const QueryStats& stats, double cpu_ms) {
  const QueryCostBreakdown cost = EstimateResponseTime(
      static_cast<double>(stats.index_blocks_read),
      static_cast<double>(stats.data_blocks_read), 30.0, cpu_ms);
  std::printf("  %-6s %-16.*s N=%-5llu index=%-4llu est. response %.2f s\n",
              label, static_cast<int>(AccessPathName(stats.path).size()),
              AccessPathName(stats.path).data(),
              static_cast<unsigned long long>(stats.data_blocks_read),
              static_cast<unsigned long long>(stats.index_blocks_read),
              cost.total_seconds());
}

}  // namespace

int main() {
  // The §5.2 reference relation: 16 attributes, ~32-byte tuples,
  // correlated leading attributes, unique trailing key.
  auto rel = GenerateRelation(PaperQueryRelationSpec(50000)).value();

  MemBlockDevice avq_device(8192), heap_device(8192);
  auto avq = Table::CreateAvq(rel.schema, &avq_device).value();
  auto heap = Table::CreateHeap(rel.schema, &heap_device).value();
  AVQDB_CHECK_OK(avq->BulkLoad(rel.tuples));
  AVQDB_CHECK_OK(heap->BulkLoad(rel.tuples));
  const size_t key = rel.schema->num_attributes() - 1;
  AVQDB_CHECK_OK(avq->CreateSecondaryIndex(key));
  AVQDB_CHECK_OK(heap->CreateSecondaryIndex(key));

  std::printf("relation: %llu tuples, m = %zu bytes\n",
              static_cast<unsigned long long>(avq->num_tuples()),
              rel.schema->tuple_width());
  std::printf("data blocks: AVQ %llu vs uncoded %llu\n\n",
              static_cast<unsigned long long>(avq->DataBlockCount()),
              static_cast<unsigned long long>(heap->DataBlockCount()));

  // CPU costs per block for the response-time estimate: use the paper's
  // HP 9000/735 column so the numbers line up with Fig 5.9.
  const MachineProfile machine = PaperMachines()[0];

  struct Scenario {
    const char* what;
    RangeQuery query;
  };
  const Scenario scenarios[] = {
      {"clustered range on the leading attribute",
       {0, 2, 5}},
      {"full scan: selective range on an unindexed attribute",
       {5, 100, 120}},
      {"keyed probe through the secondary index",
       {key, 12345, 12345}},
  };

  for (const Scenario& s : scenarios) {
    std::printf("sigma_{%llu <= A_%zu <= %llu}  (%s)\n",
                static_cast<unsigned long long>(s.query.lo),
                s.query.attribute + 1,
                static_cast<unsigned long long>(s.query.hi), s.what);
    QueryStats avq_stats, heap_stats;
    auto avq_rows = ExecuteRangeSelect(*avq, s.query, &avq_stats).value();
    auto heap_rows = ExecuteRangeSelect(*heap, s.query, &heap_stats).value();
    AVQDB_CHECK(avq_rows == heap_rows, "stores disagree");
    Report("AVQ", avq_stats, machine.decode_ms_per_block);
    Report("heap", heap_stats, machine.extract_ms_per_block);
    std::printf("  both stores returned the same %zu tuples\n\n",
                avq_rows.size());
  }

  std::printf(
      "the compressed store reads ~1/3 the blocks on scans; with 1995 CPU\n"
      "speeds (HP 9000/735 decode at %.1f ms/block) it still wins, and the\n"
      "margin widens as CPUs outpace disks (SS 5.3.4).\n",
      machine.decode_ms_per_block);
  return 0;
}
