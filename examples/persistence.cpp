// persistence: save a compressed table to a single file and reopen it —
// the downstream-user workflow: build once, ship the .avqt image, query
// anywhere.

#include <cstdio>
#include <set>

#include "src/db/query.h"
#include "src/db/table.h"
#include "src/db/table_io.h"
#include "src/workload/generator.h"

using namespace avqdb;

int main() {
  const char* path = "/tmp/avqdb_example_table.avqt";

  {
    // Build a compressed table from a synthetic correlated relation.
    auto rel = GenerateRelation(ClusteredRelationSpec(30000, 64)).value();
    std::set<OrdinalTuple> unique(rel.tuples.begin(), rel.tuples.end());
    std::vector<OrdinalTuple> tuples(unique.begin(), unique.end());

    MemBlockDevice device(8192);
    auto table = Table::CreateAvq(rel.schema, &device).value();
    AVQDB_CHECK_OK(table->BulkLoad(tuples));
    std::printf("built: %llu tuples in %llu blocks\n",
                static_cast<unsigned long long>(table->num_tuples()),
                static_cast<unsigned long long>(table->DataBlockCount()));
    AVQDB_CHECK_OK(SaveTable(*table, path));
    std::printf("saved to %s\n", path);
  }  // everything in memory is gone

  {
    // Reopen: data blocks are served from the file; the index is rebuilt.
    auto loaded = LoadTable(path).value();
    Table& table = *loaded.table;
    std::printf("reopened: %llu tuples in %llu blocks\n",
                static_cast<unsigned long long>(table.num_tuples()),
                static_cast<unsigned long long>(table.DataBlockCount()));

    QueryStats stats;
    RangeQuery query{0, 10, 20};
    auto rows = ExecuteRangeSelect(table, query, &stats).value();
    std::printf("query sigma_{10 <= A_1 <= 20}: %zu rows, %s\n",
                rows.size(), stats.ToString().c_str());

    // Aggregation streams without materializing.
    ConjunctiveQuery conj;
    conj.predicates = {{0, 10, 20}};
    auto agg = ExecuteAggregate(table, conj, 2, nullptr).value();
    std::printf("aggregate over A_3: count=%llu min=%llu max=%llu\n",
                static_cast<unsigned long long>(agg.count),
                static_cast<unsigned long long>(agg.min),
                static_cast<unsigned long long>(agg.max));

    // The reopened table accepts mutations (written back to the file).
    OrdinalTuple extra(table.schema()->num_attributes(), 0);
    if (!table.Contains(extra).value()) {
      AVQDB_CHECK_OK(table.Insert(extra));
      std::printf("inserted one more tuple; now %llu\n",
                  static_cast<unsigned long long>(table.num_tuples()));
    }
  }

  std::remove(path);
  return 0;
}
