// compression_survey: explore how AVQ compression responds to the shape
// of your data — domain sizes, skew, correlation, and the codec's own
// knobs — the way a storage engineer would before adopting the format.

#include <cstdio>

#include "src/avq/relation_codec.h"
#include "src/common/string_util.h"
#include "src/workload/generator.h"

using namespace avqdb;

namespace {

void Survey(const char* label, const RelationSpec& spec,
            const CodecOptions& options = CodecOptions{}) {
  auto rel = GenerateRelation(spec).value();
  RelationCodec codec(rel.schema, options);
  auto encoded = codec.Encode(std::move(rel.tuples)).value();
  std::printf("  %-36s %5zu -> %4zu blocks  %5.1f%%  (%s coded)\n", label,
              encoded.stats.uncoded_blocks, encoded.stats.coded_blocks,
              encoded.stats.BlockReductionPercent(),
              HumanBytes(encoded.stats.coded_payload_bytes).c_str());
}

}  // namespace

int main() {
  const size_t n = 50000;

  std::printf("data shape (15 attributes, %zu tuples, 8 KiB blocks):\n", n);
  {
    RelationSpec tiny;
    tiny.base_domain_size = 3;
    tiny.num_tuples = n;
    Survey("tiny domains (|A| ~ 3)", tiny);
  }
  Survey("small domains, uniform (test 3)", PaperTestSpec(3, n));
  Survey("small domains, 60/40 skew (test 1)", PaperTestSpec(1, n));
  Survey("varied domains, uniform (test 4)", PaperTestSpec(4, n));
  {
    RelationSpec wide;
    wide.base_domain_size = 64;
    wide.num_tuples = n;
    Survey("wide domains (|A| ~ 64), uniform", wide);
  }
  Survey("correlated, 100 prefix clusters",
         ClusteredRelationSpec(n, 100));
  Survey("correlated, 2000 prefix clusters",
         ClusteredRelationSpec(n, 2000));

  std::printf("\ncodec knobs (on the test-3 relation):\n");
  {
    CodecOptions chain;  // default: chain deltas + RLE
    Survey("chain deltas + RLE (paper default)", PaperTestSpec(3, n), chain);

    CodecOptions rep;
    rep.variant = CodecVariant::kRepresentativeDelta;
    Survey("representative deltas + RLE", PaperTestSpec(3, n), rep);

    CodecOptions norle;
    norle.run_length_zeros = false;
    Survey("chain deltas, RLE off", PaperTestSpec(3, n), norle);

    CodecOptions big;
    big.block_size = 65536;
    Survey("64 KiB blocks", PaperTestSpec(3, n), big);

    CodecOptions small;
    small.block_size = 1024;
    Survey("1 KiB blocks", PaperTestSpec(3, n), small);
  }

  std::printf(
      "\nrules of thumb: compression tracks density log2N / log2|R| —\n"
      "small or correlated domains compress hard, wide independent ones\n"
      "do not; skew is nearly neutral; the RLE stage is where the bytes\n"
      "disappear; block size barely matters until it gets extreme.\n");
  return 0;
}
